package lwe

import (
	"math/rand"
	"sync"
	"testing"

	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// Shared fixture so the fuzz loop does not regenerate keys per input.
var packFuzz struct {
	once sync.Once
	p    bfv.Params
	sk   *rlwe.SecretKey
	keys *PackingKeys
	err  error
}

func packFuzzSetup() error {
	packFuzz.once.Do(func() {
		p, err := bfv.NewChamParams(32)
		if err != nil {
			packFuzz.err = err
			return
		}
		rng := rand.New(rand.NewSource(42))
		sk := p.KeyGen(rng)
		keys, err := GenPackingKeys(p, rng, sk, 32)
		if err != nil {
			packFuzz.err = err
			return
		}
		packFuzz.p, packFuzz.sk, packFuzz.keys = p, sk, keys
	})
	return packFuzz.err
}

// FuzzPackLWEs drives the extraction + packing tree with arbitrary group
// sizes, extraction indices, and plaintexts: packing m extracted LWE
// samples must decrypt to m·μ at every slot.
func FuzzPackLWEs(f *testing.F) {
	f.Add(uint8(2), int64(1))
	f.Add(uint8(0), int64(7))
	f.Add(uint8(5), int64(-3))
	f.Fuzz(func(t *testing.T, mSel uint8, seed int64) {
		if err := packFuzzSetup(); err != nil {
			t.Fatal(err)
		}
		p, sk, keys := packFuzz.p, packFuzz.sk, packFuzz.keys
		m := 1 << (int(mSel) % 6) // 1..32
		rng := rand.New(rand.NewSource(seed))

		vec := make([]uint64, p.R.N)
		for i := range vec {
			vec[i] = rng.Uint64() % p.T.Q
		}
		ct := p.Encrypt(rng, sk, p.EncodeVector(vec), p.NormalLevels)

		cts := make([]*Ciphertext, m)
		idx := make([]int, m)
		for i := range cts {
			idx[i] = rng.Intn(p.R.N)
			cts[i] = Extract(p, ct, idx[i])
		}
		packed, err := PackLWEs(p, cts, keys)
		if err != nil {
			t.Fatal(err)
		}
		pt := p.Decrypt(packed, sk)
		stride := SlotStride(p.R.N, m)
		for i := 0; i < m; i++ {
			want := uint64(m) % p.T.Q * vec[idx[i]] % p.T.Q
			if got := pt.Coeffs[i*stride]; got != want {
				t.Fatalf("m=%d seed=%d slot %d (coeff %d): decrypted %d, want %d·μ=%d",
					m, seed, i, i*stride, got, m, want)
			}
		}
	})
}
