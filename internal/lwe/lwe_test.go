package lwe

import (
	"testing"

	"cham/internal/bfv"
	"cham/internal/testutil"
)

func testParams(tb testing.TB, n int) bfv.Params {
	tb.Helper()
	p, err := bfv.NewChamParams(n)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// TestExtractDecrypt: extracting coefficient idx of an RLWE ciphertext must
// yield an LWE ciphertext of exactly that plaintext coefficient.
func TestExtractDecrypt(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	vals := make([]uint64, p.R.N)
	for i := range vals {
		vals[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, p.EncodeVector(vals), 2)

	for _, idx := range []int{0, 1, 7, p.R.N / 2, p.R.N - 1} {
		l := Extract(p, ct, idx)
		if l.Levels() != 2 {
			t.Fatal("levels wrong")
		}
		if got := l.Decrypt(p, sk); got != vals[idx] {
			t.Fatalf("idx=%d: extracted %d, want %d", idx, got, vals[idx])
		}
	}
}

func TestExtractGuards(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ct := p.Encrypt(rng, sk, p.NewPlaintext(), 2)
	for _, idx := range []int{-1, p.R.N} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("idx=%d accepted", idx)
				}
			}()
			Extract(p, ct, idx)
		}()
	}
	p.R.NTT(ct.B)
	p.R.NTT(ct.A)
	defer func() {
		if recover() == nil {
			t.Error("NTT-domain input accepted")
		}
	}()
	Extract(p, ct, 0)
}

// TestAsRLWERoundTrip: Extract and AsRLWE must be inverse transforms on the
// raw mask data.
func TestAsRLWERoundTrip(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	ct := p.Encrypt(rng, sk, p.NewPlaintext(), 2)
	l := Extract(p, ct, 0)
	rl := l.AsRLWE(p)
	l2 := Extract(p, rl, 0)
	for lv := 0; lv < 2; lv++ {
		if l.Beta[lv] != l2.Beta[lv] {
			t.Fatal("beta changed")
		}
		for j := range l.Alpha[lv] {
			if l.Alpha[lv][j] != l2.Alpha[lv][j] {
				t.Fatal("alpha changed")
			}
		}
	}
}

func TestGenPackingKeysValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	for _, m := range []int{0, 3, 12, 32} {
		if _, err := GenPackingKeys(p, rng, sk, m); err == nil {
			t.Errorf("m=%d accepted", m)
		}
	}
	pk, err := GenPackingKeys(p, rng, sk, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 5, 9} {
		if pk.Keys[k] == nil {
			t.Errorf("missing key for automorphism %d", k)
		}
	}
	if len(pk.Keys) != 3 {
		t.Errorf("expected 3 keys, got %d", len(pk.Keys))
	}
}

// TestPackLWEs is the end-to-end Alg. 1 lines 3-5 check: extract m
// coefficients from independent ciphertexts, pack them, decrypt, and find
// m·μ_i at stride-N/m slots.
func TestPackLWEs(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)

	for _, m := range []int{1, 2, 4, 16, 64} {
		keys, err := GenPackingKeys(p, rng, sk, m)
		if err != nil {
			t.Fatal(err)
		}
		mus := make([]uint64, m)
		cts := make([]*Ciphertext, m)
		for i := range cts {
			mus[i] = rng.Uint64() % p.T.Q
			vals := make([]uint64, p.R.N)
			for j := range vals { // garbage everywhere, value at slot 0
				vals[j] = rng.Uint64() % p.T.Q
			}
			vals[0] = mus[i]
			ct := p.Encrypt(rng, sk, p.EncodeVector(vals), 2)
			cts[i] = Extract(p, ct, 0)
		}
		packed, err := PackLWEs(p, cts, keys)
		if err != nil {
			t.Fatal(err)
		}
		dec := p.Decrypt(packed, sk)
		stride := SlotStride(p.R.N, m)
		scale := uint64(m) % p.T.Q
		for i := 0; i < m; i++ {
			want := p.T.Mul(scale, mus[i])
			if got := dec.Coeffs[i*stride]; got != want {
				t.Fatalf("m=%d slot %d: got %d want %d (=%d·μ)", m, i, got, want, m)
			}
		}
	}
}

// TestPackLWEsWithInvPow2: pre-scaling the values by 2^-ℓ mod t cancels the
// packing factor, which is how HMVP uses the pipeline.
func TestPackLWEsWithInvPow2(t *testing.T) {
	p := testParams(t, 32)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	const m = 8
	keys, _ := GenPackingKeys(p, rng, sk, m)
	inv := p.InvPow2(3)

	mus := make([]uint64, m)
	cts := make([]*Ciphertext, m)
	for i := range cts {
		mus[i] = rng.Uint64() % p.T.Q
		vals := make([]uint64, 1)
		vals[0] = p.T.Mul(mus[i], inv) // pre-compensated
		ct := p.Encrypt(rng, sk, p.EncodeVector(vals), 2)
		cts[i] = Extract(p, ct, 0)
	}
	packed, err := PackLWEs(p, cts, keys)
	if err != nil {
		t.Fatal(err)
	}
	dec := p.Decrypt(packed, sk)
	stride := SlotStride(p.R.N, m)
	for i := 0; i < m; i++ {
		if got := dec.Coeffs[i*stride]; got != mus[i] {
			t.Fatalf("slot %d: got %d want %d", i, got, mus[i])
		}
	}
}

func TestPackLWEsValidation(t *testing.T) {
	p := testParams(t, 16)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, _ := GenPackingKeys(p, rng, sk, 4)

	ct := p.Encrypt(rng, sk, p.NewPlaintext(), 2)
	l := Extract(p, ct, 0)
	if _, err := PackLWEs(p, []*Ciphertext{l, l, l}, keys); err == nil {
		t.Error("non-power-of-two count accepted")
	}
	if _, err := PackLWEs(p, nil, keys); err == nil {
		t.Error("empty input accepted")
	}
	eight := make([]*Ciphertext, 8)
	for i := range eight {
		eight[i] = l
	}
	if _, err := PackLWEs(p, eight, keys); err == nil {
		t.Error("packing beyond key coverage accepted")
	}
}

func TestPackReductions(t *testing.T) {
	if PackReductions(4096) != 4095 {
		t.Error("the paper's 4095-reductions claim must hold")
	}
	if PackReductions(1) != 0 {
		t.Error("single ciphertext needs no reductions")
	}
}

// TestPackCoefficients: compacting scattered coefficients of one
// ciphertext into contiguous slots.
func TestPackCoefficients(t *testing.T) {
	p := testParams(t, 64)
	rng := testutil.NewRand(t)
	sk := p.KeyGen(rng)
	keys, _ := GenPackingKeys(p, rng, sk, 8)

	vals := make([]uint64, p.R.N)
	for i := range vals {
		vals[i] = rng.Uint64() % p.T.Q
	}
	ct := p.Encrypt(rng, sk, p.EncodeVector(vals), 2)

	indices := []int{3, 17, 42, 63, 7} // 5 -> pad to 8
	packed, err := PackCoefficients(p, ct, indices, keys)
	if err != nil {
		t.Fatal(err)
	}
	dec := p.Decrypt(packed, sk)
	stride := SlotStride(p.R.N, 8)
	scale := uint64(8)
	for i, idx := range indices {
		want := p.T.Mul(scale, vals[idx])
		if got := dec.Coeffs[i*stride]; got != want {
			t.Fatalf("slot %d: got %d want %d (8x coefficient %d)", i, got, want, idx)
		}
	}
	// Padding slots decrypt to zero.
	for i := len(indices); i < 8; i++ {
		if dec.Coeffs[i*stride] != 0 {
			t.Errorf("padding slot %d non-zero", i)
		}
	}
	if _, err := PackCoefficients(p, ct, nil, keys); err == nil {
		t.Error("empty index set accepted")
	}
	if _, err := PackCoefficients(p, ct, make([]int, p.R.N+1), keys); err == nil {
		t.Error("too many indices accepted")
	}
}
