package dse

import (
	"fmt"
	"sort"

	"cham/internal/fpga"
	"cham/internal/pipeline"
)

// Design-space exploration (Fig. 2b): enumerate pipeline configurations,
// keep those that place within the routing ceiling, and score them by
// HMVP throughput versus resource utilization.

// DesignPoint is one explored configuration.
type DesignPoint struct {
	Engines int
	Cfg     fpga.EngineConfig
	FreqMHz float64
	Res     fpga.Res
	MaxUtil float64 // worst single-resource utilization fraction
	RowsSec float64 // HMVP throughput on an 8192×4096 workload
	Fits    bool
	Pareto  bool
}

// Label renders the Fig.-2b style description.
func (p DesignPoint) Label() string {
	return fmt.Sprintf("9-stages, %dxPACKTWOLWES, %dxNTT, %d-PE NTT, %dx engines",
		p.Cfg.NumPack, p.Cfg.NTTPerStage, p.Cfg.NBF, p.Engines)
}

// routedFreq models place-and-route pressure: wider butterfly crossbars
// and deeper bank multiplexing degrade the achievable clock.
func routedFreq(nbf int) float64 {
	switch {
	case nbf <= 4:
		return 300
	case nbf == 8:
		return 275
	default:
		return 240
	}
}

// utilizationCeiling is the paper's place-and-route limit: every resource
// kept at or below 75%.
const utilizationCeiling = 0.75

// Explore enumerates the design space the paper sweeps in Fig. 2b
// (pipeline split via the NTT-per-stage allocation, butterfly parallelism
// 2/4/8, one or two pack units, one to four engines, both viable RAM
// strategies) on the device. The workload used for scoring is a two-tile
// HMVP (8192×4096), which exercises both engine-level and pipeline-level
// parallelism.
func Explore(dev fpga.Device) []DesignPoint {
	var pts []DesignPoint
	for _, engines := range []int{1, 2, 3, 4} {
		for _, perStage := range []int{3, 6} {
			for _, nbf := range []int{2, 4, 8} {
				for _, packs := range []int{1, 2} {
					for _, strat := range []fpga.RAMStrategy{fpga.BRAMOnly, fpga.Hybrid} {
						cfg := fpga.EngineConfig{N: 4096, NTTPerStage: perStage, NBF: nbf, NumPack: packs, Strategy: strat}
						res := fpga.FullDesign(cfg, engines)
						p := DesignPoint{
							Engines: engines,
							Cfg:     cfg,
							FreqMHz: routedFreq(nbf),
							Res:     res,
							MaxUtil: res.MaxUtil(dev),
							Fits:    res.FitsWithCeiling(dev, utilizationCeiling),
						}
						sim := pipeline.Config{
							N: 4096, NormalLevels: 2, FullLevels: 3,
							Engine: cfg, NumEngines: engines,
							FreqMHz:           p.FreqMHz,
							ReduceBufferSlots: 16,
						}
						p.RowsSec = sim.ThroughputRowsPerSec(8192, 4096)
						pts = append(pts, p)
					}
				}
			}
		}
	}
	markPareto(pts)
	return pts
}

// markPareto flags the fitting points not dominated in
// (throughput up, utilization down).
func markPareto(pts []DesignPoint) {
	for i := range pts {
		if !pts[i].Fits {
			continue
		}
		dominated := false
		for j := range pts {
			if i == j || !pts[j].Fits {
				continue
			}
			betterPerf := pts[j].RowsSec >= pts[i].RowsSec
			betterUtil := pts[j].MaxUtil <= pts[i].MaxUtil
			strictly := pts[j].RowsSec > pts[i].RowsSec || pts[j].MaxUtil < pts[i].MaxUtil
			if betterPerf && betterUtil && strictly {
				dominated = true
				break
			}
		}
		pts[i].Pareto = !dominated
	}
}

// Frontier returns the Pareto points sorted by throughput.
func Frontier(pts []DesignPoint) []DesignPoint {
	var out []DesignPoint
	for _, p := range pts {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RowsSec > out[j].RowsSec })
	return out
}

// Best returns the highest-throughput fitting point (CHAM's selection
// criterion), breaking ties toward lower utilization.
func Best(pts []DesignPoint) (DesignPoint, bool) {
	var best DesignPoint
	found := false
	for _, p := range pts {
		if !p.Fits {
			continue
		}
		if !found || p.RowsSec > best.RowsSec ||
			(p.RowsSec == best.RowsSec && p.MaxUtil < best.MaxUtil) {
			best = p
			found = true
		}
	}
	return best, found
}
