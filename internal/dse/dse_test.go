package dse

import (
	"strings"
	"testing"

	"cham/internal/fpga"
)

// TestRooflineShape reproduces Fig. 2a's key observation: standalone NTT
// and key switch are memory-bound (intensity far below the ridge) while
// the fused HMVP is compute-bound.
func TestRooflineShape(t *testing.T) {
	pts := Roofline(fpga.U200)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	byName := map[string]RooflinePoint{}
	for _, p := range pts {
		byName[p.Kernel] = p
	}
	r := Ridge(fpga.U200)
	if byName["NTT"].Bound != "memory" {
		t.Errorf("NTT should be memory-bound (intensity %.2f vs ridge %.2f)",
			byName["NTT"].Intensity, r)
	}
	if byName["KeySwitch"].Bound != "memory" {
		t.Errorf("KeySwitch should be memory-bound (intensity %.2f vs ridge %.2f)",
			byName["KeySwitch"].Intensity, r)
	}
	for name, p := range byName {
		if strings.HasPrefix(name, "HMVP") && p.Bound != "compute" {
			t.Errorf("%s should be compute-bound (intensity %.2f vs ridge %.2f)",
				name, p.Intensity, r)
		}
		if p.Attainable <= 0 || p.Intensity <= 0 {
			t.Errorf("%s: degenerate point %+v", name, p)
		}
	}
	// Fused HMVP intensity must exceed the operators by a large factor.
	if byName["HMVP 4096x4096"].Intensity < 20*byName["NTT"].Intensity {
		t.Error("HMVP should be far more compute-intense than NTT")
	}
	// Larger m amortizes the vector: intensity grows with m.
	if byName["HMVP 4096x4096"].Intensity <= byName["HMVP 256x4096"].Intensity {
		t.Error("intensity should grow with matrix rows")
	}
}

// TestExploreFindsPublishedOptima: the two Fig. 2b optimal points —
// (6×NTT, 4-PE, 2 engines) and (6×NTT, 8-PE, 1 engine) — must both sit on
// the Pareto frontier, and the first must be the overall best (it is what
// CHAM shipped).
func TestExploreFindsPublishedOptima(t *testing.T) {
	pts := Explore(fpga.VU9P)
	if len(pts) < 90 {
		t.Fatalf("only %d points explored", len(pts))
	}
	find := func(engines, perStage, nbf, packs int) *DesignPoint {
		for i := range pts {
			c := pts[i].Cfg
			if pts[i].Engines == engines && c.NTTPerStage == perStage &&
				c.NBF == nbf && c.NumPack == packs && c.Strategy == fpga.BRAMOnly {
				return &pts[i]
			}
		}
		return nil
	}
	a := find(2, 6, 4, 1) // CHAM
	b := find(1, 6, 8, 1)
	if a == nil || b == nil {
		t.Fatal("published points not enumerated")
	}
	if !a.Fits || !b.Fits {
		t.Fatalf("published points must fit: a=%v b=%v", a.Fits, b.Fits)
	}
	if !a.Pareto {
		t.Errorf("CHAM's point not Pareto: %.0f rows/s at %.1f%% util", a.RowsSec, 100*a.MaxUtil)
	}
	if !b.Pareto {
		t.Errorf("8-PE single-engine point not Pareto: %.0f rows/s at %.1f%% util", b.RowsSec, 100*b.MaxUtil)
	}
	best, ok := Best(pts)
	if !ok {
		t.Fatal("no fitting design")
	}
	if best.Engines != 2 || best.Cfg.NBF != 4 || best.Cfg.NTTPerStage != 6 {
		t.Errorf("best design is %s, want CHAM's 2x(6xNTT,4-PE)", best.Label())
	}
}

// TestExploreRejectsOversized: monster configurations must be filtered by
// the 75% ceiling.
func TestExploreRejectsOversized(t *testing.T) {
	pts := Explore(fpga.VU9P)
	sawUnfit := false
	for _, p := range pts {
		if p.Engines == 4 && p.Cfg.NTTPerStage == 6 && p.Cfg.NBF >= 4 {
			if p.Fits {
				t.Errorf("4 default-size engines cannot fit: %v", p.Res)
			}
			sawUnfit = true
		}
		if p.Pareto && !p.Fits {
			t.Error("non-fitting point marked Pareto")
		}
	}
	if !sawUnfit {
		t.Error("expected oversized points in the enumeration")
	}
}

// TestFrontierSorted: the frontier is sorted by throughput and non-empty.
func TestFrontierSorted(t *testing.T) {
	f := Frontier(Explore(fpga.VU9P))
	if len(f) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(f); i++ {
		if f[i].RowsSec > f[i-1].RowsSec {
			t.Fatal("frontier not sorted")
		}
	}
	// Frontier should be a small subset.
	if len(f) > 40 {
		t.Errorf("frontier suspiciously large: %d points", len(f))
	}
}

func TestLabel(t *testing.T) {
	pts := Explore(fpga.VU9P)
	want := "9-stages, 1xPACKTWOLWES, 6xNTT, 4-PE NTT, 2x engines"
	for _, p := range pts {
		if p.Label() == want {
			return
		}
	}
	t.Errorf("no point labelled %q", want)
}
