// Package dse reproduces CHAM's architecture-level studies: the roofline
// analysis that motivates accelerating whole HMVPs rather than individual
// HE operators (Fig. 2a), and the design-space exploration that selects
// the pipeline configuration (Fig. 2b).
package dse

import (
	"strconv"

	"cham/internal/core"
	"cham/internal/fpga"
)

// dspOpsPerModMul converts modular multiplies into the roofline's
// operation unit (one 27×18 integer multiply, i.e. one DSP slice issue):
// a Shoup modular multiply on the low-Hamming-weight moduli needs two
// such products, the reduction being shifts and adds.
const dspOpsPerModMul = 2

// limbBits are the packed storage widths of the CHAM RNS basis.
var limbBits = []int{35, 35, 39}

const plaintextBits = 17 // t = 65537

// RooflinePoint positions one kernel on the roofline.
type RooflinePoint struct {
	Kernel    string
	Ops       int64   // 27×18 multiplies
	Bytes     int64   // DRAM traffic
	Intensity float64 // ops per byte
	// Attainable throughput in ops/s: min(peak, intensity·bandwidth).
	Attainable float64
	Bound      string // "memory" or "compute"
}

// ridge returns the device's ridge-point intensity.
func ridge(d fpga.Device) float64 {
	return d.PeakDSPOps() / (d.DDRGBps * 1e9)
}

func classify(d fpga.Device, ops, bytes int64) RooflinePoint {
	p := RooflinePoint{Ops: ops, Bytes: bytes}
	p.Intensity = float64(ops) / float64(bytes)
	bw := p.Intensity * d.DDRGBps * 1e9
	if bw < d.PeakDSPOps() {
		p.Attainable = bw
		p.Bound = "memory"
	} else {
		p.Attainable = d.PeakDSPOps()
		p.Bound = "compute"
	}
	return p
}

// polyBytes returns the packed size of `polys` single-limb polynomials of
// the given limb widths (cycled).
func polyBytes(n, polys int) int64 {
	var b int64
	for i := 0; i < polys; i++ {
		bits := limbBits[i%len(limbBits)]
		b += int64(n) * int64((bits+7)/8)
	}
	return b
}

// Roofline evaluates the paper's three kernels on the device: a standalone
// NTT, a standalone key switch, and full HMVPs of growing size. The NTT
// and key switch sit far below the ridge (memory-bound: invoking them
// individually wastes the accelerator), while the fused HMVP is
// compute-bound — the observation that drives CHAM's whole-HMVP design.
func Roofline(d fpga.Device) []RooflinePoint {
	const (
		n            = 4096
		normalLevels = 2
		fullLevels   = 3
	)
	var pts []RooflinePoint

	// Standalone NTT: stream one limb in and out.
	nttOps := core.OpCounts{NTT: 1}.ModMuls(n) * dspOpsPerModMul
	p := classify(d, nttOps, 2*polyBytes(n, 1))
	p.Kernel = "NTT"
	pts = append(pts, p)

	// Standalone key switch: ciphertext in/out plus the switching key
	// (dnum digits × 2 polys × full basis).
	ksOps := core.KeySwitchOps(normalLevels, fullLevels).ModMuls(n) * dspOpsPerModMul
	ksBytes := polyBytes(n, 2*normalLevels) + // input ct
		polyBytes(n, 2*normalLevels) + // output ct
		polyBytes(n, 2*normalLevels*fullLevels) // keys
	p = classify(d, ksOps, ksBytes)
	p.Kernel = "KeySwitch"
	pts = append(pts, p)

	// Fused HMVPs: matrix streams once, everything else is on-chip.
	for _, m := range []int{256, 1024, 4096} {
		ops := core.HMVPOps(n, normalLevels, fullLevels, m, n).ModMuls(n) * dspOpsPerModMul
		bytes := core.HMVPBytes(n, normalLevels, fullLevels, m, n, limbBits, plaintextBits)
		p = classify(d, ops, bytes)
		p.Kernel = "HMVP " + strconv.Itoa(m) + "x" + strconv.Itoa(n)
		pts = append(pts, p)
	}
	return pts
}

// Ridge exposes the device ridge intensity for rendering the roofline.
func Ridge(d fpga.Device) float64 { return ridge(d) }
