package hetero

import (
	"strings"
	"testing"

	"cham/internal/perfmodel"
	"cham/internal/pipeline"
)

func sampleJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:       "j",
			H2DBytes:   12 << 20,
			D2HBytes:   1 << 20,
			ComputeSec: 2e-3,
			PrepSec:    1e-3,
			PostSec:    0.5e-3,
		}
	}
	return jobs
}

// TestOverlapBeatsSerial is the Fig. 1b point: interleaving transfer and
// compute across threads must beat strictly serial offload, and by a
// meaningful margin on a balanced job stream.
func TestOverlapBeatsSerial(t *testing.T) {
	s := ChamSystem()
	jobs := sampleJobs(32)
	serial := s.Simulate(jobs, false)
	over := s.Simulate(jobs, true)
	if over.Makespan >= serial.Makespan {
		t.Fatalf("overlap %.4fs not faster than serial %.4fs", over.Makespan, serial.Makespan)
	}
	speedup := serial.Makespan / over.Makespan
	if speedup < 1.5 {
		t.Errorf("overlap speed-up %.2f too small for a balanced stream", speedup)
	}
	// Useful work totals must be identical.
	if serial.EngineBusy != over.EngineBusy || serial.HostBusy != over.HostBusy {
		t.Error("work totals changed with scheduling")
	}
}

// TestEngineScaling: with two engines and enough threads, compute-bound
// streams finish ~2x faster than with one engine.
func TestEngineScaling(t *testing.T) {
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{ComputeSec: 10e-3, H2DBytes: 1 << 20, PrepSec: 0.1e-3}
	}
	one := System{Threads: 4, Engines: 1, PCIeGBps: 12}.Simulate(jobs, true)
	two := System{Threads: 4, Engines: 2, PCIeGBps: 12}.Simulate(jobs, true)
	ratio := one.Makespan / two.Makespan
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("engine scaling %.2f, want ≈ 2", ratio)
	}
}

// TestSerialOrdering: in serial mode every job's phases are strictly
// sequential and jobs never overlap.
func TestSerialOrdering(t *testing.T) {
	s := ChamSystem()
	tl := s.Simulate(sampleJobs(5), false)
	prevEnd := 0.0
	for _, j := range tl.Jobs {
		if j.PrepStart < prevEnd {
			t.Fatal("serial jobs overlap")
		}
		if !(j.PrepStart <= j.PrepEnd && j.PrepEnd <= j.H2DEnd &&
			j.H2DEnd <= j.ComputeStart && j.ComputeStart <= j.ComputeEnd &&
			j.ComputeEnd <= j.D2HEnd && j.D2HEnd <= j.PostEnd) {
			t.Fatalf("phase order violated: %+v", j)
		}
		prevEnd = j.PostEnd
	}
}

// TestOverlapRespectsResources: no engine runs two jobs at once.
func TestOverlapRespectsResources(t *testing.T) {
	s := System{Threads: 8, Engines: 2, PCIeGBps: 12}
	tl := s.Simulate(sampleJobs(40), true)
	type span struct{ s, e float64 }
	perEngine := map[int][]span{}
	for _, j := range tl.Jobs {
		perEngine[j.Engine] = append(perEngine[j.Engine], span{j.ComputeStart, j.ComputeEnd})
	}
	for e, spans := range perEngine {
		for i := 0; i < len(spans); i++ {
			for k := i + 1; k < len(spans); k++ {
				a, b := spans[i], spans[k]
				if a.s < b.e && b.s < a.e {
					t.Fatalf("engine %d double-booked: %+v %+v", e, a, b)
				}
			}
		}
	}
}

func TestSimulateGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid system accepted")
		}
	}()
	System{Threads: 0, Engines: 1, PCIeGBps: 1}.Simulate(nil, true)
}

// TestHMVPJobOffload checks the Fig. 8 claim: >90% of an HMVP's work runs
// on the FPGA for production-size matrices.
func TestHMVPJobOffload(t *testing.T) {
	cfg := pipeline.ChamConfig()
	cpu := perfmodel.Xeon6130()
	big := HMVPJob(cfg, cpu, 4096, 4096)
	if f := OffloadFraction(big); f < 0.9 {
		t.Errorf("offload fraction %.3f, want > 0.9", f)
	}
	if big.H2DBytes < 4096*4096*3 {
		t.Error("H2D payload below the matrix size")
	}
	small := HMVPJob(cfg, cpu, 64, 256)
	if OffloadFraction(small) <= 0.5 {
		t.Error("even small HMVPs should be compute-dominated")
	}
	if small.ComputeSec >= big.ComputeSec {
		t.Error("small job should compute faster")
	}
}

// TestEngineUtilization: a saturated overlapped stream keeps engines busy
// most of the time.
func TestEngineUtilization(t *testing.T) {
	s := ChamSystem()
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{ComputeSec: 5e-3, H2DBytes: 4 << 20, PrepSec: 0.2e-3, PostSec: 0.1e-3}
	}
	tl := s.Simulate(jobs, true)
	if u := tl.EngineUtilization(s.Engines); u < 0.7 {
		t.Errorf("engine utilization %.2f too low for a saturated stream", u)
	}
}

func TestGanttRendering(t *testing.T) {
	s := ChamSystem()
	tl := s.Simulate(sampleJobs(6), true)
	g := tl.Gantt(s.Threads, s.Engines, 72)
	if !strings.Contains(g, "engine 0") || !strings.Contains(g, "dma h2d") {
		t.Fatalf("lanes missing:\n%s", g)
	}
	for _, ch := range []string{"P", ">", "#", "<"} {
		if !strings.Contains(g, ch) {
			t.Errorf("phase %q not rendered:\n%s", ch, g)
		}
	}
	// Overlap means at least one column carries both a transfer and a
	// compute mark across lanes — check compute and h2d coexist at some
	// column index.
	lines := strings.Split(g, "\n")
	var h2dRow, engRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "dma h2d") {
			h2dRow = l
		}
		if strings.HasPrefix(l, "engine 0") {
			engRow = l
		}
	}
	overlapped := false
	for i := 0; i < len(h2dRow) && i < len(engRow); i++ {
		if h2dRow[i] == '>' && engRow[i] == '#' {
			overlapped = true
		}
	}
	if !overlapped {
		t.Error("no transfer/compute overlap visible in the chart")
	}
	// Degenerate inputs render a placeholder, not a panic.
	if out := (Timeline{}).Gantt(1, 1, 40); !strings.Contains(out, "empty") {
		t.Error("empty timeline not handled")
	}
}

// TestMultiCardScaling: doubling the cards roughly halves a compute-bound
// stream's makespan, and dedicated per-card PCIe links relieve a
// transfer-bound stream too.
func TestMultiCardScaling(t *testing.T) {
	per := System{Threads: 3, Engines: 2, PCIeGBps: 12}
	computeBound := make([]Job, 32)
	for i := range computeBound {
		computeBound[i] = Job{ComputeSec: 8e-3, H2DBytes: 1 << 20, PrepSec: 0.1e-3}
	}
	one := MultiCardSystem{Cards: 1, PerCard: per, Threads: 8}.Simulate(computeBound)
	two := MultiCardSystem{Cards: 2, PerCard: per, Threads: 8}.Simulate(computeBound)
	if r := one.Makespan / two.Makespan; r < 1.7 || r > 2.2 {
		t.Errorf("compute-bound card scaling %.2f, want ≈ 2", r)
	}

	transferBound := make([]Job, 32)
	for i := range transferBound {
		transferBound[i] = Job{ComputeSec: 0.5e-3, H2DBytes: 96 << 20, PrepSec: 0.1e-3}
	}
	oneT := MultiCardSystem{Cards: 1, PerCard: per, Threads: 8}.Simulate(transferBound)
	twoT := MultiCardSystem{Cards: 2, PerCard: per, Threads: 8}.Simulate(transferBound)
	if r := oneT.Makespan / twoT.Makespan; r < 1.5 {
		t.Errorf("transfer-bound card scaling %.2f, want meaningful relief from dedicated links", r)
	}
}

// TestMultiCardConsistency: one card must match the single-card simulator
// on identical work, and the engine ids must stay within range.
func TestMultiCardConsistency(t *testing.T) {
	per := ChamSystem()
	jobs := sampleJobs(12)
	single := per.Simulate(jobs, true)
	multi := MultiCardSystem{Cards: 1, PerCard: per, Threads: per.Threads}.Simulate(jobs)
	if d := single.Makespan - multi.Makespan; d > 1e-9 || d < -1e-9 {
		t.Errorf("1-card multi simulator (%.6f) disagrees with base (%.6f)", multi.Makespan, single.Makespan)
	}
	m2 := MultiCardSystem{Cards: 3, PerCard: per, Threads: 6}.Simulate(jobs)
	for _, j := range m2.Jobs {
		if j.Engine < 0 || j.Engine >= 3*per.Engines {
			t.Fatalf("engine id %d out of range", j.Engine)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid multi-card system accepted")
			}
		}()
		MultiCardSystem{}.Simulate(nil)
	}()
}
