package hetero

// Multi-accelerator deployment (§V-B.3: "be deployed in multiple hardware
// accelerators"): one host drives several CHAM cards, each with its own
// PCIe link, DMA channels and engines; host worker threads are shared.

// MultiCardSystem describes the scaled deployment.
type MultiCardSystem struct {
	Cards   int
	PerCard System // engines + PCIe per card
	Threads int    // host worker threads shared across cards
}

// Simulate schedules jobs across cards with full phase overlap. Each job
// runs on the card whose engines free up first; transfers use that card's
// dedicated link.
func (s MultiCardSystem) Simulate(jobs []Job) Timeline {
	if s.Cards < 1 || s.Threads < 1 || s.PerCard.Engines < 1 || s.PerCard.PCIeGBps <= 0 {
		panic("hetero: invalid multi-card system")
	}
	var tl Timeline
	threadFree := make([]float64, s.Threads)
	type card struct {
		engineFree []float64
		dmaIn      float64
		dmaOut     float64
	}
	cards := make([]card, s.Cards)
	for i := range cards {
		cards[i].engineFree = make([]float64, s.PerCard.Engines)
	}

	for _, j := range jobs {
		h2d := float64(j.H2DBytes) / (s.PerCard.PCIeGBps * 1e9)
		d2h := float64(j.D2HBytes) / (s.PerCard.PCIeGBps * 1e9)
		var tr JobTrace
		tr.Name = j.Name

		ti := argmin(threadFree)
		tr.Thread = ti
		tr.PrepStart = threadFree[ti]
		tr.PrepEnd = tr.PrepStart + j.PrepSec
		threadFree[ti] = tr.PrepEnd

		// Choose the card whose earliest engine frees up soonest.
		bestCard, bestTime := 0, 0.0
		for c := range cards {
			e := argmin(cards[c].engineFree)
			avail := max2(cards[c].engineFree[e], max2(tr.PrepEnd, cards[c].dmaIn))
			if c == 0 || avail < bestTime {
				bestCard, bestTime = c, avail
			}
		}
		cd := &cards[bestCard]

		start := max2(tr.PrepEnd, cd.dmaIn)
		tr.H2DEnd = start + h2d
		cd.dmaIn = tr.H2DEnd

		ei := argmin(cd.engineFree)
		tr.Engine = bestCard*s.PerCard.Engines + ei
		tr.ComputeStart = max2(tr.H2DEnd, cd.engineFree[ei])
		tr.ComputeEnd = tr.ComputeStart + j.ComputeSec
		cd.engineFree[ei] = tr.ComputeEnd

		start = max2(tr.ComputeEnd, cd.dmaOut)
		tr.D2HEnd = start + d2h
		cd.dmaOut = tr.D2HEnd

		ti = argmin(threadFree)
		post := max2(tr.D2HEnd, threadFree[ti])
		tr.PostEnd = post + j.PostSec
		threadFree[ti] = tr.PostEnd

		tl.EngineBusy += j.ComputeSec
		tl.TransferBusy += h2d + d2h
		tl.HostBusy += j.PrepSec + j.PostSec
		if tr.PostEnd > tl.Makespan {
			tl.Makespan = tr.PostEnd
		}
		tl.Jobs = append(tl.Jobs, tr)
	}
	return tl
}
