package hetero

import (
	"fmt"
	"strings"
)

// Gantt renders the timeline as ASCII art in the style of the paper's
// Fig. 1b: one lane per host thread, DMA direction, and engine, with
// jobs shown as phase blocks. Width is the chart width in characters.
func (t Timeline) Gantt(threads, engines, width int) string {
	if len(t.Jobs) == 0 || t.Makespan <= 0 || width < 20 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / t.Makespan
	col := func(sec float64) int {
		c := int(sec * scale)
		if c >= width {
			c = width - 1
		}
		return c
	}
	type lane struct {
		name string
		row  []byte
	}
	mkLane := func(name string) *lane {
		return &lane{name: name, row: []byte(strings.Repeat(".", width))}
	}
	var lanes []*lane
	threadLanes := map[int]*lane{}
	for i := 0; i < threads; i++ {
		l := mkLane(fmt.Sprintf("thread %d", i))
		threadLanes[i] = l
		lanes = append(lanes, l)
	}
	h2d := mkLane("dma h2d")
	d2h := mkLane("dma d2h")
	lanes = append(lanes, h2d, d2h)
	engineLanes := map[int]*lane{}
	for i := 0; i < engines; i++ {
		l := mkLane(fmt.Sprintf("engine %d", i))
		engineLanes[i] = l
		lanes = append(lanes, l)
	}

	fill := func(l *lane, from, to float64, ch byte) {
		if l == nil {
			return
		}
		a, b := col(from), col(to)
		if b <= a {
			b = a + 1
		}
		for i := a; i < b && i < width; i++ {
			l.row[i] = ch
		}
	}
	for _, j := range t.Jobs {
		fill(threadLanes[j.Thread], j.PrepStart, j.PrepEnd, 'P')
		fill(h2d, j.PrepEnd, j.H2DEnd, '>')
		fill(engineLanes[j.Engine], j.ComputeStart, j.ComputeEnd, '#')
		fill(d2h, j.ComputeEnd, j.D2HEnd, '<')
		fill(threadLanes[j.Thread], j.D2HEnd, j.PostEnd, 'p')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.2f ms  (P=prep  >=h2d  #=compute  <=d2h  p=post)\n", t.Makespan*1e3)
	for _, l := range lanes {
		fmt.Fprintf(&b, "%-9s |%s|\n", l.name, l.row)
	}
	return b.String()
}
