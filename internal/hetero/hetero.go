// Package hetero models CHAM's heterogeneous CPU+FPGA system (§III-C,
// Fig. 1b): host threads prepare jobs (encode/encrypt), DMA channels move
// data over PCIe, compute engines run the macro-pipeline, and results
// stream back for host-side post-processing. Interleaving these phases
// across jobs hides transfer latency behind computation — the ablation
// that package-level benchmarks compare against strictly serial execution.
package hetero

import (
	"fmt"

	"cham/internal/core"
	"cham/internal/obs"
	"cham/internal/perfmodel"
	"cham/internal/pipeline"
)

// Gauges publishing the last simulated schedule, labeled by scheduling
// mode so the overlap/serial ablation reads straight off a scrape.
var (
	simGauges = func() [2]struct{ makespan, util, xfer, host *obs.Gauge } {
		var g [2]struct{ makespan, util, xfer, host *obs.Gauge }
		for i, mode := range []string{"serial", "overlap"} {
			g[i].makespan = obs.GetGauge("cham_hetero_makespan_seconds",
				"Simulated schedule makespan of the last Simulate call.", "mode", mode)
			g[i].util = obs.GetGauge("cham_hetero_engine_utilization",
				"Engine busy fraction of the last simulated schedule.", "mode", mode)
			g[i].xfer = obs.GetGauge("cham_hetero_transfer_busy_seconds",
				"Aggregate DMA seconds of the last simulated schedule.", "mode", mode)
			g[i].host = obs.GetGauge("cham_hetero_host_busy_seconds",
				"Aggregate host-thread seconds of the last simulated schedule.", "mode", mode)
		}
		return g
	}()
	simRuns = obs.GetCounter("cham_hetero_simulations_total",
		"Heterogeneous schedule simulations run.")
)

// Job is one accelerator invocation (e.g. one HMVP batch).
type Job struct {
	Name       string
	H2DBytes   int64   // host-to-device payload
	D2HBytes   int64   // device-to-host results
	ComputeSec float64 // engine time
	PrepSec    float64 // host encode+encrypt
	PostSec    float64 // host decrypt+decode
}

// System describes the host/device topology.
type System struct {
	Threads  int     // host worker threads
	Engines  int     // FPGA compute engines
	PCIeGBps float64 // effective per-direction DMA bandwidth
}

// ChamSystem is the production deployment: one host thread per engine
// plus one spare, PCIe Gen3 x16 at an effective 12 GB/s per direction.
func ChamSystem() System {
	return System{Threads: 3, Engines: 2, PCIeGBps: 12}
}

// Timeline summarises a simulated schedule.
type Timeline struct {
	Makespan     float64
	EngineBusy   float64 // aggregate engine-seconds of useful work
	TransferBusy float64 // aggregate DMA-seconds (both directions)
	HostBusy     float64 // aggregate host-thread-seconds
	Jobs         []JobTrace
}

// JobTrace records the phase boundaries of one job.
type JobTrace struct {
	Name               string
	PrepStart, PrepEnd float64
	H2DEnd             float64
	ComputeStart       float64
	ComputeEnd         float64
	D2HEnd             float64
	PostEnd            float64
	Engine, Thread     int
}

// EngineUtilization is the fraction of the makespan the engines spent
// computing.
func (t Timeline) EngineUtilization(engines int) float64 {
	if t.Makespan == 0 {
		return 0
	}
	return t.EngineBusy / (t.Makespan * float64(engines))
}

// Simulate schedules the jobs. With overlap=true, phases pipeline across
// jobs (Fig. 1b); with overlap=false each job runs all phases serially and
// exclusively — the naive offload baseline.
func (s System) Simulate(jobs []Job, overlap bool) Timeline {
	if s.Threads < 1 || s.Engines < 1 || s.PCIeGBps <= 0 {
		panic("hetero: invalid system")
	}
	var tl Timeline
	threadFree := make([]float64, s.Threads)
	engineFree := make([]float64, s.Engines)
	var dmaInFree, dmaOutFree float64
	var serialClock float64

	for _, j := range jobs {
		h2d := float64(j.H2DBytes) / (s.PCIeGBps * 1e9)
		d2h := float64(j.D2HBytes) / (s.PCIeGBps * 1e9)
		var tr JobTrace
		tr.Name = j.Name

		if !overlap {
			tr.Thread, tr.Engine = 0, 0
			tr.PrepStart = serialClock
			tr.PrepEnd = tr.PrepStart + j.PrepSec
			tr.H2DEnd = tr.PrepEnd + h2d
			tr.ComputeStart = tr.H2DEnd
			tr.ComputeEnd = tr.ComputeStart + j.ComputeSec
			tr.D2HEnd = tr.ComputeEnd + d2h
			tr.PostEnd = tr.D2HEnd + j.PostSec
			serialClock = tr.PostEnd
		} else {
			ti := argmin(threadFree)
			tr.Thread = ti
			tr.PrepStart = threadFree[ti]
			tr.PrepEnd = tr.PrepStart + j.PrepSec
			threadFree[ti] = tr.PrepEnd

			start := max2(tr.PrepEnd, dmaInFree)
			tr.H2DEnd = start + h2d
			dmaInFree = tr.H2DEnd

			ei := argmin(engineFree)
			tr.Engine = ei
			tr.ComputeStart = max2(tr.H2DEnd, engineFree[ei])
			tr.ComputeEnd = tr.ComputeStart + j.ComputeSec
			engineFree[ei] = tr.ComputeEnd

			start = max2(tr.ComputeEnd, dmaOutFree)
			tr.D2HEnd = start + d2h
			dmaOutFree = tr.D2HEnd

			ti = argmin(threadFree)
			post := max2(tr.D2HEnd, threadFree[ti])
			tr.PostEnd = post + j.PostSec
			threadFree[ti] = tr.PostEnd
		}

		tl.EngineBusy += j.ComputeSec
		tl.TransferBusy += h2d + d2h
		tl.HostBusy += j.PrepSec + j.PostSec
		if tr.PostEnd > tl.Makespan {
			tl.Makespan = tr.PostEnd
		}
		tl.Jobs = append(tl.Jobs, tr)
	}
	if obs.On() {
		mode := 0
		if overlap {
			mode = 1
		}
		g := simGauges[mode]
		g.makespan.Set(tl.Makespan)
		g.util.Set(tl.EngineUtilization(s.Engines))
		g.xfer.Set(tl.TransferBusy)
		g.host.Set(tl.HostBusy)
		simRuns.Inc()
	}
	return tl
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// limbBits mirror the CHAM basis for payload sizing.
var limbBits = []int{35, 35, 39}

// HMVPJob builds the job descriptor for one m×cols HMVP on the given
// accelerator configuration, with host costs from the CPU model.
func HMVPJob(cfg pipeline.Config, cpu perfmodel.CPU, m, cols int) Job {
	p := perfmodel.Params{N: cfg.N, NormalLevels: cfg.NormalLevels, FullLevels: cfg.FullLevels}
	// The engine-side makespan of a single tile stream: jobs are issued
	// per engine, so compute time uses one engine's pipeline.
	one := cfg
	one.NumEngines = 1
	rep := one.SimulateHMVP(m, cols)
	return Job{
		Name:       fmt.Sprintf("hmvp-%dx%d", m, cols),
		H2DBytes:   core.HMVPBytes(cfg.N, cfg.NormalLevels, cfg.FullLevels, m, cols, limbBits, 17),
		D2HBytes:   int64((m + cfg.N - 1) / cfg.N * 2 * cfg.NormalLevels * cfg.N * 5),
		ComputeSec: rep.Seconds(cfg.FreqMHz),
		PrepSec:    cpu.EncryptVectorSeconds(p, cols),
		PostSec:    cpu.DecryptVectorSeconds(p, m),
	}
}

// OffloadFraction is the share of a job's total work that runs on the
// FPGA — the Fig. 8 ">90% offloaded" metric.
func OffloadFraction(j Job) float64 {
	total := j.ComputeSec + j.PrepSec + j.PostSec
	if total == 0 {
		return 0
	}
	return j.ComputeSec / total
}
