// Package beaver implements Delphi-style matrix Beaver-triple generation
// (§V-B.4): the preprocessing phase of cryptographic neural-network
// inference, where each linear layer consumes one triple
//
//	client: (r, c)   server: (W, s)   with   c + s ≡ W·r (mod t).
//
// The client encrypts a random vector r; the server evaluates the layer
// homomorphically — exactly one CHAM HMVP — masks the result with its
// random share s, and returns it. The online phase then needs only
// cleartext arithmetic on secret shares (OnlineLinear).
package beaver

import (
	"fmt"
	"math/rand"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/rlwe"
)

// ClientShare is the client half of a triple.
type ClientShare struct {
	R []uint64 // the random mask vector
	C []uint64 // c = W·r - s (decrypted HMVP output)
}

// ServerShare is the server half.
type ServerShare struct {
	S []uint64
}

// Generator produces triples for a fixed key setup.
type Generator struct {
	P  bfv.Params
	Ev *core.Evaluator
}

// NewGenerator builds a generator whose packing keys cover layers of up
// to maxRows output neurons.
func NewGenerator(p bfv.Params, rng *rand.Rand, sk *rlwe.SecretKey, maxRows int) (*Generator, error) {
	ev, err := core.NewEvaluator(p, rng, sk, maxRows)
	if err != nil {
		return nil, err
	}
	return &Generator{P: p, Ev: ev}, nil
}

// Generate runs the preprocessing protocol for one m×n layer matrix W.
// The client key sk both encrypts r and decrypts the masked result (in a
// deployment the decryption happens client-side; the server only ever
// sees ciphertexts and its own mask s). For many triples over the same W
// (one per upcoming inference), use PrepareLayer + GenerateWith instead.
func (g *Generator) Generate(rng *rand.Rand, sk *rlwe.SecretKey, w [][]uint64) (*ClientShare, *ServerShare, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, nil, fmt.Errorf("beaver: empty layer matrix")
	}
	n := len(w[0])
	r, ctR := g.clientMask(rng, sk, n)

	// Server: homomorphic W·r, then subtract the random share s by adding
	// its negation to the packed result.
	res, err := g.Ev.MatVec(w, ctR)
	if err != nil {
		return nil, nil, err
	}
	cs, ss := g.finishTriple(rng, sk, res, r)
	return cs, ss, nil
}

// PreparedLayer is a layer matrix fixed in evaluation-ready form (rows
// encoded, lifted, and forward-transformed once). Triples generated with
// GenerateWith skip all per-matrix work — the amortization that matters
// when one layer serves many inferences.
type PreparedLayer struct {
	pm *core.PreparedMatrix
}

// PrepareLayer hoists the per-matrix half of the HMVP out of triple
// generation for layer matrix w.
func (g *Generator) PrepareLayer(w [][]uint64) (*PreparedLayer, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("beaver: empty layer matrix")
	}
	pm, err := g.Ev.Prepare(w)
	if err != nil {
		return nil, err
	}
	return &PreparedLayer{pm: pm}, nil
}

// GenerateWith produces one triple for a prepared layer, paying only the
// per-vector pipeline stages.
func (g *Generator) GenerateWith(rng *rand.Rand, sk *rlwe.SecretKey, pl *PreparedLayer) (*ClientShare, *ServerShare, error) {
	r, ctR := g.clientMask(rng, sk, pl.pm.Cols())
	res, err := pl.pm.Apply(ctR)
	if err != nil {
		return nil, nil, err
	}
	cs, ss := g.finishTriple(rng, sk, res, r)
	return cs, ss, nil
}

// clientMask draws the client's random vector r and encrypts it.
func (g *Generator) clientMask(rng *rand.Rand, sk *rlwe.SecretKey, n int) ([]uint64, []*rlwe.Ciphertext) {
	r := make([]uint64, n)
	for i := range r {
		r[i] = rng.Uint64() % g.P.T.Q
	}
	return r, core.EncryptVector(g.P, rng, sk, r)
}

// finishTriple draws the server share s, blinds the packed result, and
// decrypts the client's share c = W·r - s.
func (g *Generator) finishTriple(rng *rand.Rand, sk *rlwe.SecretKey, res *core.Result, r []uint64) (*ClientShare, *ServerShare) {
	s := make([]uint64, res.M)
	for i := range s {
		s[i] = rng.Uint64() % g.P.T.Q
	}
	g.maskPacked(res, s)
	c := core.DecryptResult(g.P, res, sk)
	return &ClientShare{R: r, C: c}, &ServerShare{S: s}
}

// maskPacked adds -s into the packed result ciphertexts at the packing
// stride, so the server's mask never leaves the server in the clear.
func (g *Generator) maskPacked(res *core.Result, s []uint64) {
	idx := 0
	for ti, ct := range res.Packed {
		rows := res.M - ti*res.N
		if rows > res.N {
			rows = res.N
		}
		stride := res.N / res.TileRows(ti)
		pt := g.P.NewPlaintext()
		for i := 0; i < rows; i++ {
			pt.Coeffs[i*stride] = g.P.T.Neg(s[idx])
			idx++
		}
		g.P.AddPlain(ct, pt)
	}
}

// GenerateBatch produces one triple per layer matrix — the bulk
// preprocessing workload CHAM accelerates 49×–144×.
func (g *Generator) GenerateBatch(rng *rand.Rand, sk *rlwe.SecretKey, layers [][][]uint64) ([]*ClientShare, []*ServerShare, error) {
	clients := make([]*ClientShare, len(layers))
	servers := make([]*ServerShare, len(layers))
	for i, w := range layers {
		c, s, err := g.Generate(rng, sk, w)
		if err != nil {
			return nil, nil, fmt.Errorf("beaver: layer %d: %w", i, err)
		}
		clients[i], servers[i] = c, s
	}
	return clients, servers, nil
}

// Verify checks the triple invariant c + s ≡ W·r (mod t).
func Verify(p bfv.Params, w [][]uint64, cs *ClientShare, ss *ServerShare) error {
	want := core.PlainMatVec(p, w, cs.R)
	if len(cs.C) != len(want) || len(ss.S) != len(want) {
		return fmt.Errorf("beaver: share length mismatch")
	}
	for i := range want {
		if p.T.Add(cs.C[i], ss.S[i]) != want[i] {
			return fmt.Errorf("beaver: triple invariant broken at row %d", i)
		}
	}
	return nil
}

// OnlineLinear runs the Delphi online phase for one layer on a secret
// input x held by the client: the client reveals δ = x - r; the server
// returns its share W·δ + s; the client's share is c. The two shares sum
// to W·x.
func OnlineLinear(p bfv.Params, w [][]uint64, x []uint64, cs *ClientShare, ss *ServerShare) (clientOut, serverOut []uint64, err error) {
	if len(x) != len(cs.R) {
		return nil, nil, fmt.Errorf("beaver: input length %d, mask length %d", len(x), len(cs.R))
	}
	delta := make([]uint64, len(x))
	for i := range x {
		delta[i] = p.T.Sub(p.T.Reduce(x[i]), cs.R[i])
	}
	wd := core.PlainMatVec(p, w, delta)
	serverOut = make([]uint64, len(wd))
	for i := range wd {
		serverOut[i] = p.T.Add(wd[i], ss.S[i])
	}
	return cs.C, serverOut, nil
}
