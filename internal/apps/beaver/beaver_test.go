package beaver

import (
	"math/rand"
	"testing"

	"cham/internal/bfv"
	"cham/internal/core"
)

func TestGenerateTripleShapes(t *testing.T) {
	p, err := bfv.NewChamParams(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sk := p.KeyGen(rng)
	g, err := NewGenerator(p, rng, sk, p.R.N)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ m, n int }{
		{1, 1}, {8, 64}, {64, 64}, {5, 10}, {40, 100}, {70, 64}, // 70 > N: row tiling
	}
	for _, s := range shapes {
		w := make([][]uint64, s.m)
		for i := range w {
			w[i] = make([]uint64, s.n)
			for j := range w[i] {
				w[i][j] = rng.Uint64() % p.T.Q
			}
		}
		cs, ss, err := g.Generate(rng, sk, w)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.m, s.n, err)
		}
		if err := Verify(p, w, cs, ss); err != nil {
			t.Fatalf("%dx%d: %v", s.m, s.n, err)
		}
	}
}

// TestSharesLookRandom: neither share alone should reveal W·r — check the
// marginal distribution is not constant/degenerate.
func TestSharesLookRandom(t *testing.T) {
	p, _ := bfv.NewChamParams(32)
	rng := rand.New(rand.NewSource(2))
	sk := p.KeyGen(rng)
	g, _ := NewGenerator(p, rng, sk, 32)
	w := [][]uint64{make([]uint64, 32)} // all-zero layer: W·r = 0
	cs, ss, err := g.Generate(rng, sk, w)
	if err != nil {
		t.Fatal(err)
	}
	// With W = 0, c = -s: shares must still be non-trivial values.
	if cs.C[0] == 0 && ss.S[0] == 0 {
		t.Error("shares are trivially zero")
	}
	if p.T.Add(cs.C[0], ss.S[0]) != 0 {
		t.Error("zero-layer triple must sum to zero")
	}
}

func TestGenerateBatch(t *testing.T) {
	p, _ := bfv.NewChamParams(32)
	rng := rand.New(rand.NewSource(3))
	sk := p.KeyGen(rng)
	g, _ := NewGenerator(p, rng, sk, 32)

	// A small "network": three layers of different shapes.
	layers := make([][][]uint64, 3)
	dims := []struct{ m, n int }{{16, 32}, {8, 16}, {4, 8}}
	for l, d := range dims {
		layers[l] = make([][]uint64, d.m)
		for i := range layers[l] {
			layers[l][i] = make([]uint64, d.n)
			for j := range layers[l][i] {
				layers[l][i][j] = rng.Uint64() % p.T.Q
			}
		}
	}
	cls, svs, err := g.GenerateBatch(rng, sk, layers)
	if err != nil {
		t.Fatal(err)
	}
	for l := range layers {
		if err := Verify(p, layers[l], cls[l], svs[l]); err != nil {
			t.Errorf("layer %d: %v", l, err)
		}
	}
	// Batch with a broken layer reports the layer index.
	layers[1] = [][]uint64{}
	if _, _, err := g.GenerateBatch(rng, sk, layers); err == nil {
		t.Error("empty layer accepted")
	}
}

// TestOnlineLinear: the shares produced by the online phase must sum to
// W·x for a fresh input x.
func TestOnlineLinear(t *testing.T) {
	p, _ := bfv.NewChamParams(32)
	rng := rand.New(rand.NewSource(4))
	sk := p.KeyGen(rng)
	g, _ := NewGenerator(p, rng, sk, 32)

	m, n := 8, 32
	w := make([][]uint64, m)
	for i := range w {
		w[i] = make([]uint64, n)
		for j := range w[i] {
			w[i][j] = rng.Uint64() % p.T.Q
		}
	}
	cs, ss, err := g.Generate(rng, sk, w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]uint64, n)
	for i := range x {
		x[i] = rng.Uint64() % p.T.Q
	}
	co, so, err := OnlineLinear(p, w, x, cs, ss)
	if err != nil {
		t.Fatal(err)
	}
	want := core.PlainMatVec(p, w, x)
	for i := range want {
		if p.T.Add(co[i], so[i]) != want[i] {
			t.Fatalf("online share sum wrong at %d", i)
		}
	}
	if _, _, err := OnlineLinear(p, w, x[:n-1], cs, ss); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	p, _ := bfv.NewChamParams(16)
	rng := rand.New(rand.NewSource(5))
	sk := p.KeyGen(rng)
	g, _ := NewGenerator(p, rng, sk, 16)
	if _, _, err := g.Generate(rng, sk, nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, _, err := g.Generate(rng, sk, [][]uint64{{}}); err == nil {
		t.Error("zero-column matrix accepted")
	}
}

// TestPreparedLayerTriples: GenerateWith on a prepared layer must yield
// valid triples, many in a row, matching the Generate contract.
func TestPreparedLayerTriples(t *testing.T) {
	p, _ := bfv.NewChamParams(64)
	rng := rand.New(rand.NewSource(6))
	sk := p.KeyGen(rng)
	g, _ := NewGenerator(p, rng, sk, 64)

	m, n := 24, 100 // non-power-of-two rows, multi-chunk columns
	w := make([][]uint64, m)
	for i := range w {
		w[i] = make([]uint64, n)
		for j := range w[i] {
			w[i][j] = rng.Uint64() % p.T.Q
		}
	}
	pl, err := g.PrepareLayer(w)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		cs, ss, err := g.GenerateWith(rng, sk, pl)
		if err != nil {
			t.Fatalf("triple %d: %v", k, err)
		}
		if err := Verify(p, w, cs, ss); err != nil {
			t.Fatalf("triple %d: %v", k, err)
		}
	}
	if _, err := g.PrepareLayer(nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := g.PrepareLayer([][]uint64{{}}); err == nil {
		t.Error("zero-column matrix accepted")
	}
}
