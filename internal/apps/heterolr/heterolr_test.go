package heterolr

import (
	"math"

	"cham/internal/core"
	"math/rand"
	"testing"
	"testing/quick"
)

func testCodec(tb testing.TB, n int) *Codec {
	tb.Helper()
	c, err := NewCodec(n, 6)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func TestCodecRoundTrip(t *testing.T) {
	c := testCodec(t, 64)
	f := func(v int32) bool {
		r0, r1 := c.EncodeInt(int64(v))
		return c.DecodeInt(r0, r1) == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Float round trip at depth 1 is exact to quantization.
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 3.140625} {
		r0, r1 := c.Encode(x)
		got := c.Decode(r0, r1, 1)
		if math.Abs(got-x) > 1.0/64 {
			t.Errorf("%f -> %f", x, got)
		}
	}
	// Near the space boundary.
	half := new(bigIntWrap).halfSpace(c)
	r0, r1 := c.EncodeInt(half)
	if c.DecodeInt(r0, r1) != half {
		t.Error("boundary value lost")
	}
}

// bigIntWrap avoids importing math/big in multiple spots of this test.
type bigIntWrap struct{}

func (bigIntWrap) halfSpace(c *Codec) int64 {
	s := c.Space()
	s.Rsh(s, 2)
	return s.Int64()
}

func TestCheckHeadroom(t *testing.T) {
	c := testCodec(t, 16)
	if err := c.CheckHeadroom(8192, 4); err != nil {
		t.Errorf("8192 samples should fit at F=6: %v", err)
	}
	if err := c.CheckHeadroom(1<<40, 4); err == nil {
		t.Error("absurd accumulation accepted")
	}
}

func TestSyntheticDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := Synthetic(rng, 200, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples() != 200 || d.FeaturesA() != 5 || d.FeaturesB() != 7 {
		t.Fatal("dimensions wrong")
	}
	ones := 0
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			t.Fatal("label not binary")
		}
		if y == 1 {
			ones++
		}
	}
	if ones < 20 || ones > 180 {
		t.Errorf("degenerate class balance: %d/200", ones)
	}
	if _, err := Synthetic(rng, 0, 1, 1); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestTrainMatchesQuantizedReference: the homomorphic protocol must
// produce bit-identical weight trajectories to the clear integer
// reference — HE adds no arithmetic error at these parameters.
func TestTrainMatchesQuantizedReference(t *testing.T) {
	codec := testCodec(t, 256)
	rng := rand.New(rand.NewSource(2))
	d, err := Synthetic(rng, 200, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const epochs, lr = 3, 0.8
	tr, err := NewTrainer(codec, rng, epochs, lr, d.FeaturesA()+d.FeaturesB())
	if err != nil {
		t.Fatal(err)
	}
	he, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	ref := TrainPlaintextQuantized(codec, d, epochs, lr)
	for i := range he.WA {
		if math.Abs(he.WA[i]-ref.WA[i]) > 1e-12 {
			t.Fatalf("WA[%d]: HE %.15f vs ref %.15f", i, he.WA[i], ref.WA[i])
		}
	}
	for i := range he.WB {
		if math.Abs(he.WB[i]-ref.WB[i]) > 1e-12 {
			t.Fatalf("WB[%d]: HE %.15f vs ref %.15f", i, he.WB[i], ref.WB[i])
		}
	}
}

// TestTrainingConverges: accuracy well above chance and decreasing loss
// on a separable synthetic problem.
func TestTrainingConverges(t *testing.T) {
	codec := testCodec(t, 256)
	rng := rand.New(rand.NewSource(3))
	d, err := Synthetic(rng, 256, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(codec, rng, 8, 1.2, 12)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(d); acc < 0.8 {
		t.Errorf("training accuracy %.3f < 0.8", acc)
	}
	first := m.LossHistory[0]
	last := m.LossHistory[len(m.LossHistory)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

// TestTrainerValidation: hyperparameter and headroom guards.
func TestTrainerValidation(t *testing.T) {
	codec := testCodec(t, 16)
	rng := rand.New(rand.NewSource(4))
	if _, err := NewTrainer(codec, rng, 0, 0.1, 4); err == nil {
		t.Error("0 epochs accepted")
	}
	if _, err := NewTrainer(codec, rng, 1, -1, 4); err == nil {
		t.Error("negative lr accepted")
	}
	// Headroom failure: tiny modulus space vs huge dataset is simulated by
	// a codec with excessive fraction bits.
	big, err := NewCodec(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(big, rng, 1, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := Synthetic(rng, 16, 2, 2)
	if _, err := tr.Train(d); err == nil {
		t.Error("overflow-prone training accepted")
	}
}

// TestChunkedSamples: more samples than the ring degree exercises the
// chunked residual assembly and column-tiled HMVP.
func TestChunkedSamples(t *testing.T) {
	codec := testCodec(t, 64)
	rng := rand.New(rand.NewSource(5))
	d, err := Synthetic(rng, 150, 3, 3) // 150 > N=64: 3 chunks
	if err != nil {
		t.Fatal(err)
	}
	const epochs, lr = 2, 0.5
	tr, err := NewTrainer(codec, rng, epochs, lr, 6)
	if err != nil {
		t.Fatal(err)
	}
	he, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	ref := TrainPlaintextQuantized(codec, d, epochs, lr)
	for i := range he.WA {
		if math.Abs(he.WA[i]-ref.WA[i]) > 1e-12 {
			t.Fatalf("chunked WA[%d] differs", i)
		}
	}
}

// TestMiniBatchMatchesReference: mini-batch training through the HE
// protocol must match the integer reference exactly, batch by batch.
func TestMiniBatchMatchesReference(t *testing.T) {
	codec := testCodec(t, 128)
	rng := rand.New(rand.NewSource(6))
	d, err := Synthetic(rng, 100, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	const epochs, lr, batch = 2, 0.6, 32
	tr, err := NewTrainer(codec, rng, epochs, lr, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr.BatchSize = batch
	he, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	ref := TrainPlaintextQuantizedBatched(codec, d, epochs, lr, batch)
	for i := range he.WA {
		if math.Abs(he.WA[i]-ref.WA[i]) > 1e-12 {
			t.Fatalf("mini-batch WA[%d]: %v vs %v", i, he.WA[i], ref.WA[i])
		}
	}
	for i := range he.WB {
		if math.Abs(he.WB[i]-ref.WB[i]) > 1e-12 {
			t.Fatalf("mini-batch WB[%d]: %v vs %v", i, he.WB[i], ref.WB[i])
		}
	}
	// Mini-batch must differ from full-batch (it is a different algorithm).
	full := TrainPlaintextQuantized(codec, d, epochs, lr)
	same := true
	for i := range full.WA {
		if math.Abs(full.WA[i]-he.WA[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("mini-batch training trajectory identical to full batch")
	}
}

// TestMiniBatchRelaxesHeadroom: a batch size small enough to fit the CRT
// space lets training proceed where full batch would overflow.
func TestMiniBatchRelaxesHeadroom(t *testing.T) {
	big, err := NewCodec(64, 12) // 12 fraction bits: tight headroom
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	d, _ := Synthetic(rng, 600, 2, 2)
	tr, err := NewTrainer(big, rng, 1, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(d); err == nil {
		t.Fatal("full batch at 600 samples should overflow F=12 headroom")
	}
	tr.BatchSize = 16
	if _, err := tr.Train(d); err != nil {
		t.Fatalf("mini-batch should fit: %v", err)
	}
}

// TestGradientMasking: the arbiter-visible plaintexts must be blinded —
// decrypting the packed gradients without unmasking yields values far
// from the true gradients — while the unmasked training trajectory stays
// bit-exact (covered by TestTrainMatchesQuantizedReference, which runs
// the masked protocol).
func TestGradientMasking(t *testing.T) {
	codec := testCodec(t, 128)
	rng := rand.New(rand.NewSource(9))
	d, _ := Synthetic(rng, 64, 3, 3)
	tr, err := NewTrainer(codec, rng, 1, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Reach into one step manually: run the HMVP twice, once with and
	// once without masking, and compare the arbiter's view.
	m := &Model{WA: make([]float64, 3), WB: make([]float64, 3)}
	xaT := quantizeTranspose(tr.Codec, d.XA)
	xbT := quantizeTranspose(tr.Codec, d.XB)
	ch := tr.channels()[0]
	uA := matVecFloat(d.XA, m.WA)
	uaq := make([]uint64, len(uA))
	for s, u := range uA {
		uaq[s] = ch.p.T.FromCentered(tr.Codec.Quantize(u))
	}
	quarter := uint64(1) << (tr.Codec.F - 2)
	stacked := append(append([][]uint64{}, xaT[0]...), xbT[0]...)

	run := func(masks []int64) []uint64 {
		ctU := core.EncryptVector(ch.p, rng, tr.sk, uaq)
		ctD := tr.assembleResidual(ch, ctU, matVecFloat(d.XB, m.WB), d.Y, quarter)
		res, err := ch.ev.MatVec(stacked, ctD)
		if err != nil {
			t.Fatal(err)
		}
		if masks != nil {
			maskPackedResult(ch.p, res, masks)
		}
		return core.DecryptResult(ch.p, res, tr.sk)
	}
	truth := run(nil)
	masks := make([]int64, 6)
	for i := range masks {
		masks[i] = int64(1000 + i*77777)
	}
	blinded := run(masks)
	for i := range truth {
		want := ch.p.T.Add(truth[i], ch.p.T.FromCentered(masks[i]))
		if blinded[i] != want {
			t.Fatalf("row %d: masked value %d, want %d", i, blinded[i], want)
		}
		if blinded[i] == truth[i] && masks[i]%int64(ch.p.T.Q) != 0 {
			t.Fatalf("row %d: arbiter sees the raw gradient", i)
		}
	}
}
