// Package heterolr implements FATE-style heterogeneous (vertically
// partitioned) logistic regression — the paper's §V-B.3 application —
// on top of the CHAM HMVP stack: party A and party B hold disjoint
// feature columns, party B holds the labels, and an arbiter holds the
// decryption key. Each iteration the Taylor-approximated residual is
// encrypted and both parties compute their gradient block as a
// homomorphic matrix-vector product X^T·[d].
//
// Because CHAM's plaintext modulus (t = 65537) is too small for
// gradient accumulations, values are carried in CRT over two plaintext
// moduli — the "matrix tiling + CRT" trick the paper alludes to for
// supporting data of any scale. The ring, keys and ciphertext moduli are
// shared; only the plaintext scaling differs.
package heterolr

import (
	"fmt"
	"math"
	"math/big"

	"cham/internal/bfv"
	"cham/internal/mod"
	"cham/internal/ring"
)

// T1 is the companion plaintext modulus: the Proth prime 3·2^18 + 1,
// coprime to bfv.DefaultT, giving a combined plaintext space of ~2^36.6.
const T1 = 3*(1<<18) + 1

// Codec encodes signed fixed-point values into the two plaintext residue
// channels.
type Codec struct {
	P0, P1 bfv.Params
	F      uint // fraction bits
	space  *big.Int
}

// NewCodec builds the two parameter sets over one shared ring.
func NewCodec(n int, f uint) (*Codec, error) {
	r, err := ring.New(n, mod.ChamModuli())
	if err != nil {
		return nil, err
	}
	p0, err := bfv.NewParams(r, 2, 21, bfv.DefaultT)
	if err != nil {
		return nil, err
	}
	p1, err := bfv.NewParams(r, 2, 21, T1)
	if err != nil {
		return nil, err
	}
	space := new(big.Int).Mul(
		new(big.Int).SetUint64(bfv.DefaultT), new(big.Int).SetUint64(T1))
	return &Codec{P0: p0, P1: p1, F: f, space: space}, nil
}

// Space returns the combined plaintext modulus t0·t1.
func (c *Codec) Space() *big.Int { return new(big.Int).Set(c.space) }

// EncodeInt maps a signed integer into its two residues.
func (c *Codec) EncodeInt(v int64) (uint64, uint64) {
	return c.P0.T.FromCentered(v), c.P1.T.FromCentered(v)
}

// Encode quantizes x to F fraction bits and returns the residues.
func (c *Codec) Encode(x float64) (uint64, uint64) {
	return c.EncodeInt(c.Quantize(x))
}

// Quantize returns round(x·2^F).
func (c *Codec) Quantize(x float64) int64 {
	return int64(math.Round(x * float64(int64(1)<<c.F)))
}

// DecodeInt reconstructs the centred integer from the two residues via
// CRT. The value must fit in (-t0·t1/2, t0·t1/2].
func (c *Codec) DecodeInt(r0, r1 uint64) int64 {
	t0 := new(big.Int).SetUint64(c.P0.T.Q)
	t1 := new(big.Int).SetUint64(c.P1.T.Q)
	// v = r0 + t0·((r1-r0)·t0^{-1} mod t1)
	inv := new(big.Int).ModInverse(t0, t1)
	diff := new(big.Int).SetUint64(r1)
	diff.Sub(diff, new(big.Int).SetUint64(r0))
	diff.Mul(diff, inv)
	diff.Mod(diff, t1)
	v := diff.Mul(diff, t0)
	v.Add(v, new(big.Int).SetUint64(r0))
	half := new(big.Int).Rsh(c.space, 1)
	if v.Cmp(half) > 0 {
		v.Sub(v, c.space)
	}
	return v.Int64()
}

// Decode reconstructs a float carried at `prods` multiplicative depth
// (scale 2^(F·prods)).
func (c *Codec) Decode(r0, r1 uint64, prods uint) float64 {
	return float64(c.DecodeInt(r0, r1)) / math.Pow(2, float64(c.F*prods))
}

// CheckHeadroom verifies that an accumulation of `terms` products of
// depth-2 fixed-point values with the given magnitude bound fits the CRT
// space; call it before choosing F for a dataset size.
func (c *Codec) CheckHeadroom(terms int, bound float64) error {
	max := new(big.Float).SetFloat64(bound * bound * float64(terms))
	max.Mul(max, big.NewFloat(math.Pow(2, float64(2*c.F))))
	limit := new(big.Float).SetInt(new(big.Int).Rsh(c.space, 1))
	if max.Cmp(limit) >= 0 {
		return fmt.Errorf("heterolr: %d terms at bound %.1f overflow the CRT space with F=%d",
			terms, bound, c.F)
	}
	return nil
}
