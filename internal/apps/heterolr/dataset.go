package heterolr

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a vertically partitioned binary-classification problem:
// party A holds the first FeaturesA columns, party B the rest plus the
// labels (the FATE HeteroLR setting over entity-resolved sample overlap).
type Dataset struct {
	XA    [][]float64 // samples × featuresA
	XB    [][]float64 // samples × featuresB
	Y     []float64   // labels in {0,1}
	TrueW []float64   // generating weights (A features first), for tests
}

// Samples returns the number of (overlapping) samples.
func (d *Dataset) Samples() int { return len(d.Y) }

// FeaturesA and FeaturesB return the per-party widths.
func (d *Dataset) FeaturesA() int { return len(d.XA[0]) }
func (d *Dataset) FeaturesB() int { return len(d.XB[0]) }

// Synthetic generates a linearly separable-ish dataset: features uniform
// in [-1, 1], labels sampled from the logistic model with the hidden
// weights, so a correct trainer reaches high accuracy.
func Synthetic(rng *rand.Rand, samples, featuresA, featuresB int) (*Dataset, error) {
	if samples < 1 || featuresA < 1 || featuresB < 1 {
		return nil, fmt.Errorf("heterolr: non-positive dataset dimensions")
	}
	total := featuresA + featuresB
	w := make([]float64, total)
	for i := range w {
		w[i] = rng.NormFloat64() * 1.5
	}
	d := &Dataset{TrueW: w}
	for s := 0; s < samples; s++ {
		xa := make([]float64, featuresA)
		xb := make([]float64, featuresB)
		u := 0.0
		for i := range xa {
			xa[i] = rng.Float64()*2 - 1
			u += xa[i] * w[i]
		}
		for i := range xb {
			xb[i] = rng.Float64()*2 - 1
			u += xb[i] * w[featuresA+i]
		}
		label := 0.0
		if 1/(1+math.Exp(-u)) > rng.Float64() {
			label = 1
		}
		d.XA = append(d.XA, xa)
		d.XB = append(d.XB, xb)
		d.Y = append(d.Y, label)
	}
	return d, nil
}
