package heterolr

import (
	"fmt"
	"math"
	"math/rand"

	"cham/internal/bfv"
	"cham/internal/core"
	"cham/internal/rlwe"
)

// The protocol, following FATE's HeteroLR (Hardy et al.):
//
//  1. Both parties compute their local logit shares u = X·w in the clear.
//  2. Party A encrypts its share under the arbiter's key and sends it to
//     party B.
//  3. Party B homomorphically assembles the Taylor-approximated residual
//     [d] = 1/4·([u_A] + u_B) + (1/2 - y)   (σ(u) ≈ 1/2 + u/4).
//  4. Each party derives its gradient block as the HMVP X^T·[d] — the
//     step CHAM accelerates.
//  5. The arbiter decrypts the masked gradients and returns the updates.
//
// Fixed-point scales: logits at F bits, residuals at 2F after the 1/4
// multiply, gradients at 3F after the HMVP. All values ride the CRT
// plaintext pair, so the arithmetic is exact end to end (verified against
// an integer reference in tests).

// Trainer holds the cryptographic material and hyperparameters.
type Trainer struct {
	Codec  *Codec
	Epochs int
	LR     float64
	L2     float64
	// BatchSize enables mini-batch gradient descent (the paper's "if
	// combined with the techniques of mini-batch and matrix tiling, our
	// algorithm is able to support data of any scale"). 0 = full batch.
	BatchSize int

	rng *rand.Rand
	sk  *rlwe.SecretKey // the arbiter's key
	ev0 *core.Evaluator
	ev1 *core.Evaluator
}

// NewTrainer generates the arbiter key and the HMVP evaluators. The
// packing keys cover up to maxFeatures gradient rows.
func NewTrainer(codec *Codec, rng *rand.Rand, epochs int, lr float64, maxFeatures int) (*Trainer, error) {
	if epochs < 1 || lr <= 0 {
		return nil, fmt.Errorf("heterolr: bad hyperparameters")
	}
	sk := codec.P0.KeyGen(rng)
	ev0, err := core.NewEvaluator(codec.P0, rng, sk, maxFeatures)
	if err != nil {
		return nil, err
	}
	ev1, err := core.NewEvaluator(codec.P1, rng, sk, maxFeatures)
	if err != nil {
		return nil, err
	}
	return &Trainer{
		Codec: codec, Epochs: epochs, LR: lr, L2: 1e-4,
		rng: rng, sk: sk, ev0: ev0, ev1: ev1,
	}, nil
}

// Model is the trained split weight vector.
type Model struct {
	WA, WB      []float64
	LossHistory []float64
}

// PredictProb evaluates the logistic model on one sample.
func (m *Model) PredictProb(xa, xb []float64) float64 {
	u := 0.0
	for i, x := range xa {
		u += x * m.WA[i]
	}
	for i, x := range xb {
		u += x * m.WB[i]
	}
	return 1 / (1 + math.Exp(-u))
}

// Accuracy is the 0/1 accuracy over the dataset.
func (m *Model) Accuracy(d *Dataset) float64 {
	correct := 0
	for s := 0; s < d.Samples(); s++ {
		p := m.PredictProb(d.XA[s], d.XB[s])
		if (p > 0.5) == (d.Y[s] > 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(d.Samples())
}

// channel bundles the per-plaintext-modulus machinery.
type channel struct {
	p  bfv.Params
	ev *core.Evaluator
}

func (tr *Trainer) channels() [2]channel {
	return [2]channel{{tr.Codec.P0, tr.ev0}, {tr.Codec.P1, tr.ev1}}
}

// Train runs the protocol and returns the model.
func (tr *Trainer) Train(d *Dataset) (*Model, error) {
	batch := tr.BatchSize
	if batch <= 0 || batch > d.Samples() {
		batch = d.Samples()
	}
	if err := tr.Codec.CheckHeadroom(batch, 4); err != nil {
		return nil, err
	}
	m := &Model{
		WA: make([]float64, d.FeaturesA()),
		WB: make([]float64, d.FeaturesB()),
	}
	// The stacked feature matrix of each mini-batch is epoch-invariant, so
	// its evaluation-ready form (encode + lift + NTT of every gradient row)
	// is prepared once on first use and reused by every later epoch.
	cache := &prepCache{}
	cache.prep[0] = map[int]*core.PreparedMatrix{}
	cache.prep[1] = map[int]*core.PreparedMatrix{}
	for epoch := 0; epoch < tr.Epochs; epoch++ {
		for base := 0; base < d.Samples(); base += batch {
			end := base + batch
			if end > d.Samples() {
				end = d.Samples()
			}
			if err := tr.step(d, m, base, end, cache); err != nil {
				return nil, err
			}
		}
		m.LossHistory = append(m.LossHistory, logisticLoss(d, m))
	}
	return m, nil
}

// prepCache holds the prepared per-batch feature matrices, keyed by batch
// base sample, one map per residue channel. Scoped to a single Train call
// (the dataset and batch boundaries must not change under it).
type prepCache struct {
	prep [2]map[int]*core.PreparedMatrix
}

// step runs one gradient update over samples [base, end).
func (tr *Trainer) step(d *Dataset, m *Model, base, end int, cache *prepCache) error {
	quarter := uint64(1) << (tr.Codec.F - 2) // 1/4 at scale F
	xa := d.XA[base:end]
	xb := d.XB[base:end]
	y := d.Y[base:end]

	// Step 1: local logit shares (clear), quantized at scale F.
	uA := matVecFloat(xa, m.WA)
	uB := matVecFloat(xb, m.WB)

	// Random masks: the parties blind the packed gradients before the
	// arbiter decrypts, so the arbiter only ever sees g + mask mod t
	// (FATE's secure-aggregation discipline).
	features := d.FeaturesA() + d.FeaturesB()
	masks := make([]int64, features)
	for i := range masks {
		masks[i] = int64(tr.rng.Uint64() % (1 << 40))
	}

	// Quantized feature matrices for this batch, transposed (gradient rows
	// = features, the matrix-tiling boundary) — only materialized when the
	// batch is not yet in the prepared cache.
	var xaT, xbT [2][][]uint64

	var gInt [2][]uint64 // per channel, packed gradient residues
	for ci, ch := range tr.channels() {
		// Step 2: A encrypts its quantized logits.
		uaq := make([]uint64, len(uA))
		for s, u := range uA {
			uaq[s] = ch.p.T.FromCentered(tr.Codec.Quantize(u))
		}
		ctU := core.EncryptVector(ch.p, tr.rng, tr.sk, uaq)

		// Step 3: B assembles the residual homomorphically.
		ctD := tr.assembleResidual(ch, ctU, uB, y, quarter)

		// Step 4: gradient blocks for both parties, one packed HMVP over
		// the stacked feature rows, prepared once per batch and reused
		// across epochs.
		pm := cache.prep[ci][base]
		if pm == nil {
			if xaT[ci] == nil {
				xaT = quantizeTranspose(tr.Codec, xa)
				xbT = quantizeTranspose(tr.Codec, xb)
			}
			stacked := append(append([][]uint64{}, xaT[ci]...), xbT[ci]...)
			var err error
			pm, err = ch.ev.Prepare(stacked)
			if err != nil {
				return err
			}
			cache.prep[ci][base] = pm
		}
		res, err := pm.Apply(ctD)
		if err != nil {
			return err
		}
		// Step 4b: blind the packed gradients.
		maskPackedResult(ch.p, res, masks)
		// Step 5: the arbiter decrypts the MASKED gradients; the parties
		// remove their masks locally.
		masked := core.DecryptResult(ch.p, res, tr.sk)
		gInt[ci] = make([]uint64, len(masked))
		for i := range masked {
			gInt[ci][i] = ch.p.T.Sub(masked[i], ch.p.T.FromCentered(masks[i]))
		}
	}

	// Decode gradients at depth 3 (x·(quarter·u)) and update.
	n := float64(end - base)
	for i := 0; i < d.FeaturesA(); i++ {
		g := tr.Codec.Decode(gInt[0][i], gInt[1][i], 3) / n
		m.WA[i] -= tr.LR * (g + tr.L2*m.WA[i])
	}
	for i := 0; i < d.FeaturesB(); i++ {
		j := d.FeaturesA() + i
		g := tr.Codec.Decode(gInt[0][j], gInt[1][j], 3) / n
		m.WB[i] -= tr.LR * (g + tr.L2*m.WB[i])
	}
	return nil
}

// assembleResidual computes [d] = quarter·([uA] + uB) + (1/2-y)·2^(2F)
// chunk-wise on party B, keeping the augmented basis for the HMVP.
func (tr *Trainer) assembleResidual(ch channel, ctU []*rlwe.Ciphertext, uB, y []float64, quarter uint64) []*rlwe.Ciphertext {
	n := ch.p.R.N
	out := make([]*rlwe.Ciphertext, len(ctU))
	for c := range ctU {
		lo := c * n
		hi := lo + n
		if hi > len(uB) {
			hi = len(uB)
		}
		// uB chunk at scale F.
		ubq := ch.p.NewPlaintext()
		for s := lo; s < hi; s++ {
			ubq.Coeffs[s-lo] = ch.p.T.FromCentered(tr.Codec.Quantize(uB[s]))
		}
		ct := ctU[c].Copy()
		ch.p.AddPlain(ct, ubq)
		// Multiply by 1/4 at scale F: values move to scale 2F.
		scaled := &rlwe.Ciphertext{B: ch.p.R.NewPoly(ct.Levels()), A: ch.p.R.NewPoly(ct.Levels())}
		ch.p.MulScalar(scaled, ct, quarter)
		// Add (1/2 - y) at scale 2F.
		bias := ch.p.NewPlaintext()
		for s := lo; s < hi; s++ {
			v := int64(math.Round((0.5 - y[s]) * math.Pow(2, float64(2*tr.Codec.F))))
			bias.Coeffs[s-lo] = ch.p.T.FromCentered(v)
		}
		ch.p.AddPlain(scaled, bias)
		out[c] = scaled
	}
	return out
}

// maskPackedResult adds the per-row masks into the packed gradient
// ciphertexts at the packing stride, before they reach the arbiter.
func maskPackedResult(p bfv.Params, res *core.Result, masks []int64) {
	idx := 0
	for ti, ct := range res.Packed {
		rows := res.M - ti*res.N
		if rows > res.N {
			rows = res.N
		}
		stride := res.N / res.TileRows(ti)
		pt := p.NewPlaintext()
		for i := 0; i < rows && idx < len(masks); i++ {
			pt.Coeffs[i*stride] = p.T.FromCentered(masks[idx])
			idx++
		}
		p.AddPlain(ct, pt)
	}
}

// quantizeTranspose returns X^T quantized into both residue channels.
func quantizeTranspose(c *Codec, x [][]float64) [2][][]uint64 {
	samples := len(x)
	features := len(x[0])
	var out [2][][]uint64
	for ch := 0; ch < 2; ch++ {
		out[ch] = make([][]uint64, features)
		for f := 0; f < features; f++ {
			out[ch][f] = make([]uint64, samples)
		}
	}
	for s := 0; s < samples; s++ {
		for f := 0; f < features; f++ {
			r0, r1 := c.Encode(x[s][f])
			out[0][f][s] = r0
			out[1][f][s] = r1
		}
	}
	return out
}

func matVecFloat(x [][]float64, w []float64) []float64 {
	out := make([]float64, len(x))
	for s := range x {
		for i, v := range x[s] {
			out[s] += v * w[i]
		}
	}
	return out
}

func logisticLoss(d *Dataset, m *Model) float64 {
	loss := 0.0
	for s := 0; s < d.Samples(); s++ {
		p := m.PredictProb(d.XA[s], d.XB[s])
		p = math.Min(math.Max(p, 1e-9), 1-1e-9)
		loss += -d.Y[s]*math.Log(p) - (1-d.Y[s])*math.Log(1-p)
	}
	return loss / float64(d.Samples())
}

// TrainPlaintextQuantized runs the identical protocol arithmetic on clear
// integers (same quantization, same Taylor approximation) — the exactness
// reference for the HE path.
func TrainPlaintextQuantized(codec *Codec, d *Dataset, epochs int, lr float64) *Model {
	return TrainPlaintextQuantizedBatched(codec, d, epochs, lr, 0)
}

// TrainPlaintextQuantizedBatched is the mini-batch reference (batch <= 0
// means full batch).
func TrainPlaintextQuantizedBatched(codec *Codec, d *Dataset, epochs int, lr float64, batch int) *Model {
	m := &Model{
		WA: make([]float64, d.FeaturesA()),
		WB: make([]float64, d.FeaturesB()),
	}
	if batch <= 0 || batch > d.Samples() {
		batch = d.Samples()
	}
	const l2 = 1e-4
	f := codec.F
	for epoch := 0; epoch < epochs; epoch++ {
		for base := 0; base < d.Samples(); base += batch {
			end := base + batch
			if end > d.Samples() {
				end = d.Samples()
			}
			xa, xb, y := d.XA[base:end], d.XB[base:end], d.Y[base:end]
			uA := matVecFloat(xa, m.WA)
			uB := matVecFloat(xb, m.WB)
			n := end - base
			dInt := make([]int64, n)
			for s := 0; s < n; s++ {
				uq := codec.Quantize(uA[s]) + codec.Quantize(uB[s])
				dInt[s] = (int64(1)<<(f-2))*uq +
					int64(math.Round((0.5-y[s])*math.Pow(2, float64(2*f))))
			}
			grad := func(x [][]float64, w []float64) {
				for i := range w {
					var acc int64
					for s := 0; s < n; s++ {
						acc += codec.Quantize(x[s][i]) * dInt[s]
					}
					g := float64(acc) / math.Pow(2, float64(3*f)) / float64(n)
					w[i] -= lr * (g + l2*w[i])
				}
			}
			grad(xa, m.WA)
			grad(xb, m.WB)
		}
		m.LossHistory = append(m.LossHistory, logisticLoss(d, m))
	}
	return m
}
