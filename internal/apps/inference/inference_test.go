package inference

import (
	"math"
	"math/rand"
	"testing"

	"cham/internal/apps/beaver"
	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// testNetwork builds a small random MLP with weights in [-1, 1] so the
// single-modulus fixed-point headroom (t = 65537, F = 4) holds.
// A production deployment would ride the CRT plaintext pair as heterolr
// does.
func testNetwork(tb testing.TB, rng *rand.Rand, dims []int) (*Network, bfv.Params, *rlwe.SecretKey, *beaver.Generator) {
	tb.Helper()
	p, err := bfv.NewChamParams(64)
	if err != nil {
		tb.Fatal(err)
	}
	sk := p.KeyGen(rng)
	gen, err := beaver.NewGenerator(p, rng, sk, 64)
	if err != nil {
		tb.Fatal(err)
	}
	var weights [][][]float64
	var biases [][]float64
	for l := 1; l < len(dims); l++ {
		w := make([][]float64, dims[l])
		for i := range w {
			w[i] = make([]float64, dims[l-1])
			for j := range w[i] {
				w[i][j] = rng.Float64()*2 - 1
			}
		}
		b := make([]float64, dims[l])
		for i := range b {
			b[i] = rng.Float64()*0.5 - 0.25
		}
		weights = append(weights, w)
		biases = append(biases, b)
	}
	nw, err := NewNetwork(p, 4, weights, biases)
	if err != nil {
		tb.Fatal(err)
	}
	return nw, p, sk, gen
}

func randInput(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// TestProtocolMatchesPlainQuantized: the share-based online phase must be
// bit-identical to the cleartext quantized network.
func TestProtocolMatchesPlainQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw, _, sk, gen := testNetwork(t, rng, []int{8, 12, 6, 3})
	pre, err := nw.Preprocess(gen, rng, sk)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := randInput(rng, 8)
		got, err := nw.Infer(pre, x)
		if err != nil {
			t.Fatal(err)
		}
		want := nw.InferPlain(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d output %d: protocol %v vs plain %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestQuantizedTracksFloat: the quantized network approximates the float
// network within the F=4 quantization error envelope.
func TestQuantizedTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw, _, sk, gen := testNetwork(t, rng, []int{6, 10, 2})
	pre, err := nw.Preprocess(gen, rng, sk)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for trial := 0; trial < 20; trial++ {
		x := randInput(rng, 6)
		got, err := nw.Infer(pre, x)
		if err != nil {
			t.Fatal(err)
		}
		ref := nw.InferFloat(x)
		for i := range ref {
			if e := math.Abs(got[i] - ref[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	// F=4 gives 1/16 weight/activation resolution; errors accumulate over
	// two layers but must stay well below 1.
	if maxErr > 0.8 {
		t.Errorf("quantization error %.3f too large", maxErr)
	}
	if maxErr == 0 {
		t.Error("implausibly exact — quantization not exercised?")
	}
}

// TestClassificationAgreement: argmax decisions of the private protocol
// agree with the float network on most inputs.
func TestClassificationAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw, _, sk, gen := testNetwork(t, rng, []int{8, 16, 4})
	pre, err := nw.Preprocess(gen, rng, sk)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 40
	for trial := 0; trial < total; trial++ {
		x := randInput(rng, 8)
		got, err := nw.Infer(pre, x)
		if err != nil {
			t.Fatal(err)
		}
		if argmax(got) == argmax(nw.InferFloat(x)) {
			agree++
		}
	}
	if agree < total*3/4 {
		t.Errorf("only %d/%d argmax agreements", agree, total)
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func TestNetworkValidation(t *testing.T) {
	p, _ := bfv.NewChamParams(16)
	w1 := [][][]float64{{{1, 2}}}
	if _, err := NewNetwork(p, 4, w1, nil); err == nil {
		t.Error("bias mismatch accepted")
	}
	if _, err := NewNetwork(p, 4, nil, nil); err == nil {
		t.Error("empty network accepted")
	}
	// Shape mismatch between layers.
	w2 := [][][]float64{{{1, 2}}, {{1, 2, 3}}}
	b2 := [][]float64{{0}, {0}}
	if _, err := NewNetwork(p, 4, w2, b2); err == nil {
		t.Error("layer shape mismatch accepted")
	}
	// Input length validation at inference time.
	rng := rand.New(rand.NewSource(4))
	nw, _, sk, gen := testNetwork(t, rng, []int{4, 2})
	pre, _ := nw.Preprocess(gen, rng, sk)
	if _, err := nw.Infer(pre, make([]float64, 3)); err == nil {
		t.Error("wrong input length accepted")
	}
}

// TestPreprocessBatch: each triple set of a batch must drive a correct
// inference, and all sets share the prepared layer matrices.
func TestPreprocessBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nw, _, sk, gen := testNetwork(t, rng, []int{6, 8, 3})
	pres, err := nw.PreprocessBatch(gen, rng, sk, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) != 3 {
		t.Fatalf("got %d triple sets, want 3", len(pres))
	}
	x := randInput(rng, 6)
	want := nw.InferPlain(x)
	for k, pre := range pres {
		got, err := nw.Infer(pre, x)
		if err != nil {
			t.Fatalf("set %d: %v", k, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("set %d output %d: %v vs %v", k, i, got[i], want[i])
			}
		}
	}
	if _, err := nw.PreprocessBatch(gen, rng, sk, 0); err == nil {
		t.Error("zero batch accepted")
	}
}
