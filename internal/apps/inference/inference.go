// Package inference implements Delphi-style private neural-network
// inference (the application context of §V-B.4): linear layers run on
// Beaver triples generated with CHAM's HMVP during preprocessing, the
// online phase is pure cleartext share arithmetic, and the non-linear
// layers — handled by garbled circuits in Delphi, explicitly outside
// CHAM's scope — are modelled by an oracle that reconstructs, applies
// ReLU with fixed-point truncation, and re-shares under a fresh mask
// (DESIGN.md documents this substitution).
//
// Values are signed fixed-point residues mod t with F fraction bits;
// a linear layer doubles the scale and the activation oracle truncates
// back, exactly like a quantized integer network. Tests verify the
// protocol output matches the quantized cleartext network bit for bit.
package inference

import (
	"fmt"
	"math"
	"math/rand"

	"cham/internal/apps/beaver"
	"cham/internal/bfv"
	"cham/internal/rlwe"
)

// Network is a quantized MLP: alternating linear layers and ReLUs.
type Network struct {
	P bfv.Params
	F uint // fraction bits
	// Weights[i] is the m×n matrix of layer i (float; quantized lazily).
	Weights [][][]float64
	// Biases[i] has length m (applied at scale 2F, before truncation).
	Biases [][]float64
}

// NewNetwork validates layer shapes.
func NewNetwork(p bfv.Params, f uint, weights [][][]float64, biases [][]float64) (*Network, error) {
	if len(weights) == 0 || len(weights) != len(biases) {
		return nil, fmt.Errorf("inference: %d weight layers, %d bias layers", len(weights), len(biases))
	}
	for l := range weights {
		if len(weights[l]) == 0 || len(weights[l][0]) == 0 {
			return nil, fmt.Errorf("inference: empty layer %d", l)
		}
		if len(biases[l]) != len(weights[l]) {
			return nil, fmt.Errorf("inference: layer %d bias length %d, want %d",
				l, len(biases[l]), len(weights[l]))
		}
		if l > 0 && len(weights[l][0]) != len(weights[l-1]) {
			return nil, fmt.Errorf("inference: layer %d input %d != layer %d output %d",
				l, len(weights[l][0]), l-1, len(weights[l-1]))
		}
	}
	return &Network{P: p, F: f, Weights: weights, Biases: biases}, nil
}

// quantize maps a float to its mod-t fixed-point residue.
func (nw *Network) quantize(x float64) uint64 {
	return nw.P.T.FromCentered(int64(math.Round(x * float64(int64(1)<<nw.F))))
}

// quantizeMatrix converts one layer's weights.
func (nw *Network) quantizeMatrix(l int) [][]uint64 {
	w := nw.Weights[l]
	out := make([][]uint64, len(w))
	for i := range w {
		out[i] = make([]uint64, len(w[i]))
		for j := range w[i] {
			out[i][j] = nw.quantize(w[i][j])
		}
	}
	return out
}

// Preprocessed holds the per-layer Beaver triples from the offline phase.
type Preprocessed struct {
	Client []*beaver.ClientShare
	Server []*beaver.ServerShare
	// quantized weight matrices, cached for the online phase
	weights [][][]uint64
}

// Preprocess runs the offline phase: one CHAM HMVP per linear layer.
func (nw *Network) Preprocess(gen *beaver.Generator, rng *rand.Rand, sk *rlwe.SecretKey) (*Preprocessed, error) {
	pres, err := nw.PreprocessBatch(gen, rng, sk, 1)
	if err != nil {
		return nil, err
	}
	return pres[0], nil
}

// PreprocessBatch produces count independent triple sets (one inference
// each) over the same network. Each layer matrix is prepared exactly once
// — encode, lift, and forward NTT of every row — and reused for all count
// triples, so the per-matrix cost is amortized across the batch. This is
// the bulk preprocessing workload CHAM targets.
func (nw *Network) PreprocessBatch(gen *beaver.Generator, rng *rand.Rand, sk *rlwe.SecretKey, count int) ([]*Preprocessed, error) {
	if count < 1 {
		return nil, fmt.Errorf("inference: batch count must be positive")
	}
	pres := make([]*Preprocessed, count)
	for k := range pres {
		pres[k] = &Preprocessed{}
	}
	for l := range nw.Weights {
		w := nw.quantizeMatrix(l)
		pl, err := gen.PrepareLayer(w)
		if err != nil {
			return nil, fmt.Errorf("inference: layer %d: %w", l, err)
		}
		for k, pre := range pres {
			cs, ss, err := gen.GenerateWith(rng, sk, pl)
			if err != nil {
				return nil, fmt.Errorf("inference: layer %d, triple %d: %w", l, k, err)
			}
			pre.Client = append(pre.Client, cs)
			pre.Server = append(pre.Server, ss)
			pre.weights = append(pre.weights, w)
		}
	}
	return pres, nil
}

// Infer runs the online phase on one input vector (floats). No
// homomorphic operations occur here — only share arithmetic and the
// activation oracle.
func (nw *Network) Infer(pre *Preprocessed, x []float64) ([]float64, error) {
	if len(pre.weights) != len(nw.Weights) {
		return nil, fmt.Errorf("inference: preprocessing does not match network")
	}
	if len(x) != len(nw.Weights[0][0]) {
		return nil, fmt.Errorf("inference: input length %d, want %d", len(x), len(nw.Weights[0][0]))
	}
	t := nw.P.T
	// The client starts holding the full input at scale F.
	cur := make([]uint64, len(x))
	for i := range x {
		cur[i] = nw.quantize(x[i])
	}
	last := len(nw.Weights) - 1
	for l := range nw.Weights {
		// Linear layer via the Beaver triple: client reveals x - r; the
		// server's share is W(x-r) + s + b·2^(2F); the client's is c.
		clientShare, serverShare, err := beaver.OnlineLinear(nw.P, pre.weights[l], cur, pre.Client[l], pre.Server[l])
		if err != nil {
			return nil, fmt.Errorf("inference: layer %d: %w", l, err)
		}
		for i, b := range nw.Biases[l] {
			bq := t.FromCentered(int64(math.Round(b * math.Pow(2, float64(2*nw.F)))))
			serverShare[i] = t.Add(serverShare[i], bq)
		}
		if l == last {
			// Output layer: reconstruct logits at scale 2F.
			out := make([]float64, len(clientShare))
			for i := range out {
				v := t.CenterLift(t.Add(clientShare[i], serverShare[i]))
				out[i] = float64(v) / math.Pow(2, float64(2*nw.F))
			}
			return out, nil
		}
		// Hidden layer: the GC oracle reconstructs, truncates back to
		// scale F, applies ReLU, and hands the client the next cleartext
		// activation (in Delphi the client instead receives x-r' from the
		// garbled circuit; the arithmetic is identical).
		cur = nw.activationOracle(clientShare, serverShare)
	}
	panic("unreachable")
}

// activationOracle models the garbled-circuit ReLU: reconstruct the
// shares, truncate 2F -> F with round-to-nearest, clamp negatives to
// zero.
func (nw *Network) activationOracle(cShare, sShare []uint64) []uint64 {
	t := nw.P.T
	out := make([]uint64, len(cShare))
	half := int64(1) << (nw.F - 1)
	for i := range cShare {
		v := t.CenterLift(t.Add(cShare[i], sShare[i])) // scale 2F
		if v < 0 {
			out[i] = 0
			continue
		}
		out[i] = t.FromCentered((v + half) >> nw.F) // scale F
	}
	return out
}

// InferPlain evaluates the same quantized network in the clear — the
// exactness reference for the protocol.
func (nw *Network) InferPlain(x []float64) []float64 {
	t := nw.P.T
	cur := make([]uint64, len(x))
	for i := range x {
		cur[i] = nw.quantize(x[i])
	}
	last := len(nw.Weights) - 1
	for l := range nw.Weights {
		w := nw.quantizeMatrix(l)
		next := make([]uint64, len(w))
		for i := range w {
			var acc uint64
			for j := range w[i] {
				acc = t.Add(acc, t.Mul(w[i][j], cur[j]))
			}
			bq := t.FromCentered(int64(math.Round(nw.Biases[l][i] * math.Pow(2, float64(2*nw.F)))))
			next[i] = t.Add(acc, bq)
		}
		if l == last {
			out := make([]float64, len(next))
			for i := range out {
				out[i] = float64(t.CenterLift(next[i])) / math.Pow(2, float64(2*nw.F))
			}
			return out
		}
		half := int64(1) << (nw.F - 1)
		for i, v := range next {
			c := t.CenterLift(v)
			if c < 0 {
				next[i] = 0
			} else {
				next[i] = t.FromCentered((c + half) >> nw.F)
			}
		}
		cur = next
	}
	panic("unreachable")
}

// InferFloat evaluates the unquantized network — for accuracy comparisons.
func (nw *Network) InferFloat(x []float64) []float64 {
	cur := append([]float64(nil), x...)
	last := len(nw.Weights) - 1
	for l, w := range nw.Weights {
		next := make([]float64, len(w))
		for i := range w {
			acc := nw.Biases[l][i]
			for j := range w[i] {
				acc += w[i][j] * cur[j]
			}
			next[i] = acc
		}
		if l == last {
			return next
		}
		for i := range next {
			if next[i] < 0 {
				next[i] = 0
			}
		}
		cur = next
	}
	panic("unreachable")
}
