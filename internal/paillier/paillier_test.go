package paillier

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(tb testing.TB) *PrivateKey {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	sk, err := GenKey(rng, 128)
	if err != nil {
		tb.Fatal(err)
	}
	return sk
}

func TestGenKeyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenKey(rng, 8); err == nil {
		t.Error("tiny key accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := new(big.Int).Rand(r, sk.N)
		ct, err := sk.Encrypt(rng, m)
		if err != nil {
			return false
		}
		return sk.Decrypt(ct).Cmp(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	// Edges.
	for _, m := range []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(sk.N, big.NewInt(1))} {
		ct, err := sk.Encrypt(rng, m)
		if err != nil {
			t.Fatal(err)
		}
		if sk.Decrypt(ct).Cmp(m) != 0 {
			t.Fatalf("edge %v failed", m)
		}
	}
	// Out of range.
	if _, err := sk.Encrypt(rng, sk.N); err == nil {
		t.Error("m = n accepted")
	}
	if _, err := sk.Encrypt(rng, big.NewInt(-1)); err == nil {
		t.Error("negative m accepted")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := testKey(t)
	rng := rand.New(rand.NewSource(4))
	m := big.NewInt(42)
	c1, _ := sk.Encrypt(rng, m)
	c2, _ := sk.Encrypt(rng, m)
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestHomomorphisms(t *testing.T) {
	sk := testKey(t)
	rng := rand.New(rand.NewSource(5))
	a, b := big.NewInt(123456), big.NewInt(987654)
	ca, _ := sk.Encrypt(rng, a)
	cb, _ := sk.Encrypt(rng, b)

	if got := sk.Decrypt(sk.Add(ca, cb)); got.Int64() != 123456+987654 {
		t.Errorf("Add: %v", got)
	}
	if got := sk.Decrypt(sk.AddPlain(ca, big.NewInt(1000))); got.Int64() != 124456 {
		t.Errorf("AddPlain: %v", got)
	}
	if got := sk.Decrypt(sk.MulPlain(ca, big.NewInt(7))); got.Int64() != 7*123456 {
		t.Errorf("MulPlain: %v", got)
	}
	// Negative plaintext scalar wraps mod n.
	neg := sk.Decrypt(sk.MulPlain(ca, big.NewInt(-1)))
	if new(big.Int).Add(neg, a).Cmp(sk.N) != 0 {
		t.Errorf("MulPlain(-1): %v", neg)
	}
}

func TestMatVec(t *testing.T) {
	sk := testKey(t)
	rng := rand.New(rand.NewSource(6))
	A := [][]*big.Int{
		{big.NewInt(1), big.NewInt(2), big.NewInt(3)},
		{big.NewInt(4), big.NewInt(5), big.NewInt(6)},
	}
	vals := []int64{10, 20, 30}
	v := make([]*Ciphertext, 3)
	for i, x := range vals {
		v[i], _ = sk.Encrypt(rng, big.NewInt(x))
	}
	out, err := sk.MatVec(A, v)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1*10 + 2*20 + 3*30, 4*10 + 5*20 + 6*30}
	for i := range want {
		if got := sk.Decrypt(out[i]); got.Int64() != want[i] {
			t.Errorf("row %d: %v want %d", i, got, want[i])
		}
	}
	if _, err := sk.MatVec([][]*big.Int{{big.NewInt(1)}}, v); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFixedPointCodec(t *testing.T) {
	sk := testKey(t)
	const f = 24
	for _, x := range []float64{0, 1, -1, 3.14159, -2.71828, 1e-5, -123.456} {
		enc := sk.EncodeFixed(x, f)
		got := sk.DecodeFixed(enc, f)
		if diff := got - x; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("fixed-point round trip: %f -> %f", x, got)
		}
	}
}

// TestFixedPointHomomorphicDot: a small encrypted dot product with signed
// fixed-point values, the HeteroLR primitive.
func TestFixedPointHomomorphicDot(t *testing.T) {
	sk := testKey(t)
	rng := rand.New(rand.NewSource(7))
	const f = 20
	xs := []float64{0.5, -1.25, 2.0}
	ws := []float64{1.5, 0.25, -0.75}
	var want float64
	cts := make([]*Ciphertext, len(xs))
	for i := range xs {
		want += xs[i] * ws[i]
		cts[i], _ = sk.Encrypt(rng, sk.EncodeFixed(xs[i], f))
	}
	var acc *Ciphertext
	for i := range ws {
		term := sk.MulPlain(cts[i], sk.EncodeFixed(ws[i], f))
		if acc == nil {
			acc = term
		} else {
			acc = sk.Add(acc, term)
		}
	}
	got := sk.DecodeFixed(sk.Decrypt(acc), 2*f) // products carry 2f fraction bits
	if d := got - want; d > 1e-6 || d < -1e-6 {
		t.Errorf("dot = %f, want %f", got, want)
	}
}
