// Package paillier implements the Paillier additively homomorphic
// cryptosystem — the scheme the FATE federated-learning framework used for
// HeteroLR before CHAM's B/FV replacement (§V-B.3). It exists as the
// baseline the paper's Fig. 7 compares against: every ciphertext operation
// is a big-integer exponentiation modulo n², which is why the B/FV+CHAM
// path wins by orders of magnitude on matrix-vector products.
//
// Randomness is an injectable *rand.Rand for reproducibility; as with the
// rest of this reproduction, the implementation is not hardened for
// production use.
package paillier

import (
	"fmt"
	"math/big"
	"math/rand"
)

// PublicKey is (n, g) with g = n+1.
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // n²
}

// PrivateKey adds the decryption trapdoor λ, μ.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int
	Mu     *big.Int
}

// Ciphertext is an element of Z_{n²}.
type Ciphertext struct {
	C *big.Int
}

// GenKey generates a key pair with primes of the given bit length
// (modulus ≈ 2·bits). FATE deployments use 1024-bit primes; tests use
// smaller ones for speed.
func GenKey(rng *rand.Rand, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("paillier: prime size %d too small", bits)
	}
	p := randomPrime(rng, bits)
	q := randomPrime(rng, bits)
	for p.Cmp(q) == 0 {
		q = randomPrime(rng, bits)
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)

	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Quo(lambda, gcd) // lcm(p-1, q-1)

	// With g = n+1: L(g^λ mod n²) = λ mod n, so μ = λ^{-1} mod n.
	mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
	if mu == nil {
		return nil, fmt.Errorf("paillier: degenerate key (λ not invertible)")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2},
		Lambda:    lambda,
		Mu:        mu,
	}, nil
}

func randomPrime(rng *rand.Rand, bits int) *big.Int {
	for {
		c := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		c.SetBit(c, bits-1, 1) // force length
		c.SetBit(c, 0, 1)      // force odd
		if c.ProbablyPrime(20) {
			return c
		}
	}
}

// Encrypt encrypts m ∈ [0, n): c = (1+mn)·r^n mod n².
func (pk *PublicKey) Encrypt(rng *rand.Rand, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: message out of range")
	}
	r := randomUnit(rng, pk.N)
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, big.NewInt(1))
	c.Mod(c, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

func randomUnit(rng *rand.Rand, n *big.Int) *big.Int {
	for {
		r := new(big.Int).Rand(rng, n)
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, n).Cmp(big.NewInt(1)) == 0 {
			return r
		}
	}
}

// Decrypt recovers m = L(c^λ mod n²)·μ mod n.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) *big.Int {
	x := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	x.Sub(x, big.NewInt(1))
	x.Quo(x, sk.N) // L function
	x.Mul(x, sk.Mu)
	x.Mod(x, sk.N)
	return x
}

// Add returns the encryption of m1+m2: c1·c2 mod n².
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// AddPlain returns the encryption of m+k.
func (pk *PublicKey) AddPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	c := new(big.Int).Mul(new(big.Int).Mod(k, pk.N), pk.N)
	c.Add(c, big.NewInt(1))
	c.Mul(c, a.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// MulPlain returns the encryption of m·k: c^k mod n².
func (pk *PublicKey) MulPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	kk := new(big.Int).Mod(k, pk.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, kk, pk.N2)}
}

// MatVec computes A·v where v is an encrypted vector — the FATE HeteroLR
// inner loop: m·n ciphertext exponentiations plus m·(n-1) multiplications.
func (pk *PublicKey) MatVec(A [][]*big.Int, v []*Ciphertext) ([]*Ciphertext, error) {
	out := make([]*Ciphertext, len(A))
	for i, row := range A {
		if len(row) != len(v) {
			return nil, fmt.Errorf("paillier: row %d has %d entries, vector has %d", i, len(row), len(v))
		}
		var acc *Ciphertext
		for j, a := range row {
			term := pk.MulPlain(v[j], a)
			if acc == nil {
				acc = term
			} else {
				acc = pk.Add(acc, term)
			}
		}
		out[i] = acc
	}
	return out, nil
}

// Fixed-point encoding for the federated-learning layer: x -> round(x·2^f)
// with negatives represented as n - |x|.

// EncodeFixed encodes a float at fractional precision f bits.
func (pk *PublicKey) EncodeFixed(x float64, f uint) *big.Int {
	scaled := new(big.Float).Mul(big.NewFloat(x), big.NewFloat(float64(int64(1)<<f)))
	v, _ := scaled.Int(nil)
	return v.Mod(v, pk.N)
}

// DecodeFixed inverts EncodeFixed, interpreting values above n/2 as
// negative.
func (pk *PublicKey) DecodeFixed(v *big.Int, f uint) float64 {
	half := new(big.Int).Rsh(pk.N, 1)
	c := new(big.Int).Set(v)
	if c.Cmp(half) > 0 {
		c.Sub(c, pk.N)
	}
	out, _ := new(big.Float).Quo(new(big.Float).SetInt(c), big.NewFloat(float64(int64(1)<<f))).Float64()
	return out
}
