package cham_test

import (
	"fmt"
	"strings"
	"testing"

	"cham"
)

func TestFacadeHMVP(t *testing.T) {
	params := cham.MustParams(64)
	rng := cham.NewRNG(1)
	sk := params.KeyGen(rng)

	ev, err := cham.NewEvaluator(params, rng, sk, 16)
	if err != nil {
		t.Fatal(err)
	}
	matrix := [][]uint64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	}
	vector := []uint64{10, 20, 30}
	res, err := ev.MatVec(matrix, cham.EncryptVector(params, rng, sk, vector))
	if err != nil {
		t.Fatal(err)
	}
	got := cham.DecryptResult(params, res, sk)
	want := cham.PlainMatVec(params, matrix, vector)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestFacadePublicKeyFlow(t *testing.T) {
	params := cham.MustParams(32)
	rng := cham.NewRNG(2)
	sk := params.KeyGen(rng)
	pk := params.PublicKeyGen(rng, sk)
	ev, _ := cham.NewEvaluator(params, rng, sk, 4)
	matrix := [][]uint64{{5, 6}, {7, 8}}
	res, err := ev.MatVec(matrix, cham.EncryptVectorPK(params, rng, pk, []uint64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	got := cham.DecryptResult(params, res, sk)
	if got[0] != 17 || got[1] != 23 {
		t.Fatalf("got %v", got)
	}
}

func TestFacadeConv2D(t *testing.T) {
	params := cham.MustParams(64)
	rng := cham.NewRNG(3)
	sk := params.KeyGen(rng)
	shape := cham.Conv2DShape{H: 4, W: 4, KH: 2, KW: 2}
	img := [][]uint64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16}}
	ker := [][]uint64{{1, 0}, {0, 1}}
	ipt, err := cham.EncodeImage(params, shape, img)
	if err != nil {
		t.Fatal(err)
	}
	ct := params.Encrypt(rng, sk, ipt, params.R.Levels())
	out, err := cham.Conv2D(params, shape, ct, ker)
	if err != nil {
		t.Fatal(err)
	}
	dec := cham.DecodeConvOutput(params, shape, params.Decrypt(out, sk))
	if dec[0][0] != 1+6 || dec[2][2] != 11+16 {
		t.Fatalf("conv output wrong: %v", dec)
	}
}

func TestFacadeBatchEvaluator(t *testing.T) {
	params := cham.MustParams(32)
	rng := cham.NewRNG(4)
	sk := params.KeyGen(rng)
	be, err := cham.NewBatchEvaluator(params, rng, sk)
	if err != nil {
		t.Fatal(err)
	}
	if be.TraceSteps() != 5 {
		t.Fatalf("TraceSteps = %d", be.TraceSteps())
	}
}

func TestFacadeAcceleratorAndDSE(t *testing.T) {
	acc := cham.DefaultAccelerator()
	if acc.NumEngines != 2 || acc.N != 4096 {
		t.Fatalf("unexpected default accelerator %+v", acc)
	}
	if ks := acc.KeySwitchOpsPerSec(); ks < 60e3 || ks > 70e3 {
		t.Fatalf("key-switch throughput %.0f", ks)
	}
	pts := cham.ExploreDesignSpace()
	if len(pts) < 90 {
		t.Fatalf("only %d design points", len(pts))
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := cham.Experiments()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments", len(ids))
	}
	out, err := cham.RunExperiment("headline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1800x") {
		t.Error("headline output missing paper claim")
	}
	if _, err := cham.RunExperiment("bogus"); err == nil {
		t.Error("bogus experiment id accepted")
	}
}

// ExampleRunExperiment regenerates a paper artifact programmatically.
func ExampleRunExperiment() {
	out, _ := cham.RunExperiment("table2")
	fmt.Println(strings.Contains(out, "Compute Engine 0"))
	// Output: true
}

// Example demonstrates the core homomorphic matrix-vector product flow.
func Example() {
	params := cham.MustParams(64) // use 4096 for the production parameters
	rng := cham.NewRNG(7)
	sk := params.KeyGen(rng)

	ev, _ := cham.NewEvaluator(params, rng, sk, 2)
	matrix := [][]uint64{{1, 1, 1}, {1, 2, 3}}
	vector := []uint64{4, 5, 6}

	ctV := cham.EncryptVector(params, rng, sk, vector)
	res, _ := ev.MatVec(matrix, ctV)
	fmt.Println(cham.DecryptResult(params, res, sk))
	// Output: [15 32]
}

func TestFacadeNoiseAndSecurity(t *testing.T) {
	params := cham.MustParams(4096)
	if err := cham.CheckSecurity(params); err != nil {
		t.Errorf("production parameters fail the standard: %v", err)
	}
	est := cham.NoiseEstimator(params)
	if est.MaxPackRows() != 4096 {
		t.Errorf("MaxPackRows = %d, want 4096", est.MaxPackRows())
	}
	small := cham.MustParams(1024) // test-size ring: modulus too big for N
	if err := cham.CheckSecurity(small); err == nil {
		t.Error("test-size ring should fail the standard (documented caveat)")
	}
}
