package main

// Telemetry endpoint: -metrics serves the obs registry in Prometheus
// text format plus the stdlib pprof handlers, so a running experiment
// can be watched live (chamtop) or profiled (go tool pprof).

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cham/internal/obs/metricshttp"
	"cham/internal/obs/trace"
	rt "cham/internal/runtime"
)

var (
	metricsAddr = flag.String("metrics", "",
		"serve /metrics, /debug/pprof, and /debug/traces on this address (e.g. :9090); enables telemetry")
	hold = flag.Bool("hold", false,
		"with -metrics, keep serving after the command finishes until interrupted")
	repeat = flag.Int("repeat", 1,
		"run the hmvp applies this many times (feeds the latency histograms)")
	traceSample = flag.Float64("trace-sample", 0,
		"probability [0,1] that an hmvp apply is traced (spans served at /debug/traces)")
)

// startMetrics enables telemetry and launches the HTTP endpoint when
// -metrics is set. Returns immediately; the server runs for the life of
// the process.
func startMetrics() error {
	trace.SetSampleRate(*traceSample)
	if *metricsAddr == "" {
		return nil
	}
	addr, err := metricshttp.Serve(*metricsAddr, func(err error) {
		fmt.Fprintln(os.Stderr, "chamsim: metrics server:", err)
	})
	if err != nil {
		return fmt.Errorf("chamsim: metrics listener: %w", err)
	}
	fmt.Printf("metrics: serving /metrics and /debug/pprof on http://%s\n", addr)
	return nil
}

// holdIfRequested blocks until SIGINT when -metrics -hold are both set,
// keeping the endpoint scrapeable after the workload completes.
func holdIfRequested() {
	if *metricsAddr == "" || !*hold {
		return
	}
	fmt.Println("metrics: holding endpoint open; interrupt to exit")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

// mirrorRuntime models the driver-side view of the software applies: a
// simulated two-engine card executes one HMVP descriptor per apply, with
// a mild fault plan so the RAS counters (replays, recovered writes)
// exercise their real paths. Health checks feed the temperature,
// liveness and heartbeat-age gauges.
type mirrorRuntime struct {
	rt *rt.Runtime
	d  rt.HMVPDescriptor
}

func newMirrorRuntime(m, cols, mPad int) (*mirrorRuntime, error) {
	dev := rt.NewDevice(2, 200*time.Microsecond, rt.FaultPlan{
		CorruptWriteEvery: 37,
		FailJobEvery:      23,
	})
	r, err := rt.New(dev)
	if err != nil {
		return nil, err
	}
	log2 := uint8(0)
	for v := 1; v < mPad; v <<= 1 {
		log2++
	}
	return &mirrorRuntime{
		rt: r,
		d: rt.HMVPDescriptor{
			Rows: uint32(m), Cols: uint32(cols),
			MatrixAddr: 0x1000_0000, VectorAddr: 0x2000_0000,
			KeyAddr: 0x3000_0000, ResultAddr: 0x4000_0000,
			PackRowsLog2: log2,
		},
	}, nil
}

// step mirrors one software apply onto the card and samples health.
func (mr *mirrorRuntime) step() {
	if err := mr.rt.RunHMVP(&mr.d); err != nil {
		fmt.Fprintln(os.Stderr, "chamsim: runtime mirror:", err)
	}
	mr.rt.HealthCheck()
}
