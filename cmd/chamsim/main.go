// Command chamsim regenerates the CHAM paper's evaluation tables and
// figures from the simulators and calibrated device models.
//
// Usage:
//
//	chamsim             list the available experiments
//	chamsim all         run every experiment
//	chamsim verify      run the resource-model calibration checks
//	chamsim hmvp m cols [N]  run a self-verifying HMVP and time it
//	chamsim <id> ...    run specific experiments (e.g. table2 fig6)
//
// The -workers flag bounds the evaluator's parallelism (row dot products
// and packing-tree merges); 0 means GOMAXPROCS. Results are bit-identical
// for any worker count.
//
// With -metrics ADDR the process enables telemetry and serves Prometheus
// text on /metrics plus the pprof handlers on /debug/pprof/; -hold keeps
// the endpoint up after the workload, -repeat N feeds the histograms
// with N applies (watch live with chamtop).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"cham"
	"cham/internal/core"
	"cham/internal/fpga"
	"cham/internal/noise"
	"cham/internal/obs"
	"cham/internal/obs/trace"
	"cham/internal/rlwe"
)

var workers = flag.Int("workers", 0, "evaluator worker goroutines (0 = GOMAXPROCS)")

// tracedApply runs one prepared apply under a root span. When sampling
// selects the request, a StageRecorder bridges the kernel stage timings
// into the trace so /debug/traces shows apply → kernel stage spans.
func tracedApply(pm *core.PreparedMatrix, res *core.Result, ctV []*rlwe.Ciphertext) error {
	tc, sp := trace.Root("chamsim", "apply")
	rec := trace.NewStageRecorder(tc)
	var sink obs.StageSink
	if rec != nil {
		sink = rec
	}
	err := pm.ApplyIntoSink(res, ctV, sink)
	rec.Emit("kernel")
	sp.EndErr(err)
	return err
}

func verify() int {
	checks := map[string]func() error{
		"Table II calibration":  fpga.CheckTable2Calibration,
		"Table III calibration": fpga.CheckTable3Calibration,
	}
	code := 0
	for name, fn := range checks {
		if err := fn(); err != nil {
			fmt.Printf("FAIL %s: %v\n", name, err)
			code = 1
		} else {
			fmt.Printf("ok   %s\n", name)
		}
	}
	return code
}

// runHMVP executes a self-verifying homomorphic matrix-vector product at
// the requested shape and prints wall time next to the accelerator
// model's prediction.
func runHMVP(args []string) int {
	m, cols, ringN := 8, 1024, 1024
	parse := func(i int, dst *int) bool {
		if len(args) > i {
			v, err := strconv.Atoi(args[i])
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "chamsim: bad argument %q\n", args[i])
				return false
			}
			*dst = v
		}
		return true
	}
	if !parse(0, &m) || !parse(1, &cols) || !parse(2, &ringN) {
		return 1
	}
	params, err := cham.NewParams(ringN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamsim:", err)
		return 1
	}
	rng := cham.NewRNG(42)
	sk := params.KeyGen(rng)
	rows := m
	if rows > ringN {
		rows = ringN
	}
	ev, err := cham.NewEvaluator(params, rng, sk, rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamsim:", err)
		return 1
	}
	ev.Workers = *workers
	matrix := make([][]uint64, m)
	for i := range matrix {
		matrix[i] = make([]uint64, cols)
		for j := range matrix[i] {
			matrix[i][j] = rng.Uint64() % params.T.Q
		}
	}
	vector := make([]uint64, cols)
	for j := range vector {
		vector[j] = rng.Uint64() % params.T.Q
	}
	ctV := cham.EncryptVector(params, rng, sk, vector)

	// With -metrics, mirror each apply onto a simulated card (per-engine
	// busy fractions, RAS counters) and publish the noise-budget gauges.
	var mirror *mirrorRuntime
	if *metricsAddr != "" {
		mPad := 1
		for mPad < rows {
			mPad <<= 1
		}
		if mirror, err = newMirrorRuntime(m, cols, mPad); err != nil {
			fmt.Fprintln(os.Stderr, "chamsim:", err)
			return 1
		}
		noise.New(params).PublishBudget(mPad)
	}

	start := time.Now()
	res, err := ev.MatVec(matrix, ctV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamsim:", err)
		return 1
	}
	elapsed := time.Since(start)
	if mirror != nil {
		mirror.step()
	}

	// Same product through the prepared-matrix path: the per-matrix
	// encode/lift/NTT work is hoisted into Prepare, Apply pays only the
	// per-vector stages.
	prepStart := time.Now()
	pm, err := ev.Prepare(matrix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamsim:", err)
		return 1
	}
	prepTime := time.Since(prepStart)
	applyStart := time.Now()
	res2 := pm.NewResult()
	if err := tracedApply(pm, res2, ctV); err != nil {
		fmt.Fprintln(os.Stderr, "chamsim:", err)
		return 1
	}
	applyTime := time.Since(applyStart)
	if mirror != nil {
		mirror.step()
	}
	// Extra applies keep the stage histograms and the endpoint busy.
	for extra := 1; extra < *repeat; extra++ {
		if err := tracedApply(pm, res2, ctV); err != nil {
			fmt.Fprintln(os.Stderr, "chamsim:", err)
			return 1
		}
		if mirror != nil {
			mirror.step()
		}
	}

	got := cham.DecryptResult(params, res, sk)
	got2 := cham.DecryptResult(params, res2, sk)
	want := cham.PlainMatVec(params, matrix, vector)
	for i := range want {
		if got[i] != want[i] || got2[i] != want[i] {
			fmt.Fprintf(os.Stderr, "chamsim: VERIFICATION FAILED at row %d\n", i)
			return 1
		}
	}
	if *metricsAddr != "" {
		// The simulator holds the secret key, so the measured output
		// noise gauge can be published alongside the analytic ones.
		est := noise.New(params)
		measured := 0.0
		for ti, ct := range res2.Packed {
			lo, hi := ti*res2.N, (ti+1)*res2.N
			if hi > m {
				hi = m
			}
			if b := est.MeasureTile(ct, sk, want[lo:hi], res2.TileRows(ti)); b > measured {
				measured = b
			}
		}
		noise.PublishMeasured(measured)
	}
	acc := cham.DefaultAccelerator()
	fmt.Printf("HMVP %dx%d at N=%d: verified correct\n", m, cols, ringN)
	fmt.Printf("  software (this host):      %v\n", elapsed)
	fmt.Printf("  prepared matrix:           %v prepare + %v apply\n", prepTime, applyTime)
	if ringN == acc.N {
		sim := acc.SimulateHMVP(m, cols)
		fmt.Printf("  CHAM accelerator (model):  %.3f ms (%d cycles, %d pack reductions)\n",
			1e3*sim.Seconds(acc.FreqMHz), sim.TotalCycles, sim.Merges)
	} else {
		fmt.Printf("  (accelerator model applies at N=%d)\n", acc.N)
	}
	return 0
}

func main() {
	flag.Parse()
	args := flag.Args()
	if err := startMetrics(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(args) == 1 && args[0] == "verify" {
		os.Exit(verify())
	}
	if len(args) >= 1 && args[0] == "hmvp" {
		code := runHMVP(args[1:])
		holdIfRequested()
		os.Exit(code)
	}
	if len(args) == 0 {
		fmt.Println("chamsim — CHAM (DAC'23) experiment reproduction")
		fmt.Println("\nusage: chamsim <experiment-id ...|all>")
		fmt.Println("\navailable experiments:")
		for _, id := range cham.Experiments() {
			out, _ := cham.RunExperiment(id)
			// First line of the rendered output carries the title.
			fmt.Printf("  %-8s %s\n", id, firstLine(out))
		}
		return
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = cham.Experiments()
	}
	code := 0
	for _, id := range ids {
		out, err := cham.RunExperiment(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chamsim:", err)
			code = 1
			continue
		}
		fmt.Println(out)
	}
	holdIfRequested()
	os.Exit(code)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
