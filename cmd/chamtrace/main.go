// Command chamtrace fetches and merges distributed traces. Every node
// of a CHAM deployment (chamserve shards, the chamcluster gateway,
// chamsim) retains its newest spans in an in-process ring served at
// /debug/traces; chamtrace pulls the raw records from each node's
// endpoint, merges them by TraceID, and renders the end-to-end span
// tree with the critical path — the chain of spans that bounds the
// request's latency across client, gateway, coordinator, shards,
// server queue/batch, runtime job, and kernel stages.
//
// Usage:
//
//	chamtrace -nodes http://gw:9090,http://shard0:9091,http://shard1:9092
//	chamtrace -nodes ... -trace 4f2a...            one trace only
//	chamtrace -nodes ... -last 1                   newest trace only
//	chamtrace -nodes ... -format chrome -o t.json  Perfetto/chrome://tracing
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"cham/internal/obs/trace"
)

var (
	nodes   = flag.String("nodes", "http://localhost:9090", "comma-separated metrics endpoints to pull span rings from")
	traceID = flag.String("trace", "", "only render this trace (hex TraceID)")
	last    = flag.Int("last", 0, "only render the newest N traces (0 = all)")
	format  = flag.String("format", "text", "output format: text, records, or chrome")
	out     = flag.String("o", "", "write output to this file instead of stdout")
)

// fetch pulls one node's span ring as raw records.
func fetch(base string) ([]trace.Record, error) {
	url := strings.TrimRight(base, "/") + "/debug/traces?format=records"
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return trace.UnmarshalRecords(body)
}

func run() error {
	// Merge pass: every node contributes the spans it recorded locally;
	// TraceID stitches them back into one request. A node that is down
	// degrades the trace (its spans are missing) instead of failing the
	// whole merge — buildTree parents orphans at the root.
	var merged []trace.Record
	var errs []string
	for _, node := range strings.Split(*nodes, ",") {
		node = strings.TrimSpace(node)
		if node == "" {
			continue
		}
		recs, err := fetch(node)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		merged = append(merged, recs...)
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "chamtrace: warning:", e)
	}
	if len(merged) == 0 && len(errs) > 0 {
		return fmt.Errorf("no node reachable")
	}

	if *traceID != "" {
		id, ok := trace.ParseTraceID(*traceID)
		if !ok {
			return fmt.Errorf("bad trace id %q", *traceID)
		}
		merged = trace.FilterTrace(merged, id)
		if len(merged) == 0 {
			return fmt.Errorf("trace %s not found on any node", *traceID)
		}
	}
	if *last > 0 {
		ids := trace.TraceIDs(merged)
		if len(ids) > *last {
			keep := map[trace.TraceID]bool{}
			for _, id := range ids[len(ids)-*last:] {
				keep[id] = true
			}
			kept := merged[:0]
			for _, r := range merged {
				if keep[r.Trace] {
					kept = append(kept, r)
				}
			}
			merged = kept
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		return trace.WriteText(w, merged)
	case "records":
		buf, err := trace.MarshalRecords(merged)
		if err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	case "chrome":
		buf, err := trace.ChromeTrace(merged)
		if err != nil {
			return err
		}
		_, err = w.Write(buf)
		return err
	}
	return fmt.Errorf("unknown format %q (want text, records, or chrome)", *format)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chamtrace:", err)
		os.Exit(1)
	}
}
