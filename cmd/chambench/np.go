package main

// chambench -np: the encrypted-array tier's numbers. Measures the warm
// MatMulInto hot path (one PreparedMatrix driving a whole batch of
// column blocks, allocation-free after warm-up) at the single-chunk and
// multi-chunk regimes, plus the per-layer latency of the two-layer
// chamnp inference pipeline. Results merge into BENCH_hmvp.json under
// "np" and are gated by `chambench -np -compare` (make bench-diff):
// warm MatMul allocs must stay 0 and ns/op within 10% of the baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"cham"
	"cham/internal/chamnp"
	"cham/internal/ref"
)

type npLayer struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

type npResult struct {
	// MatMul holds the warm MatMulInto rows; Rows/Cols describe the
	// OUTPUT matrix (prepared rows × batch), RowsPerSec counts decrypted
	// result values per second.
	MatMul []result `json:"matmul"`
	// InferenceLayers is the per-layer latency (best of several runs) of
	// the matmul→bias→square→matmul→bias pipeline at N=256.
	InferenceLayers []npLayer `json:"inference_layers"`
	InferenceMillis float64   `json:"inference_total_millis"`
}

// runNpShape measures one warm batched matmul: W is rows×cols prepared
// once, X is cols×batch encrypted column-major, and the timed op is
// MatMulInto into a preallocated result.
func runNpShape(ringN, rows, cols, batch, workers int) (result, error) {
	params, err := cham.NewParams(ringN)
	if err != nil {
		return result{}, err
	}
	rng := cham.NewRNG(137)
	sk := params.KeyGen(rng)
	ev, err := cham.NewEvaluator(params, rng, sk, rows)
	if err != nil {
		return result{}, err
	}
	ev.Workers = workers
	W := make([][]uint64, rows)
	for i := range W {
		W[i] = make([]uint64, cols)
		for j := range W[i] {
			W[i][j] = rng.Uint64() % params.T.Q
		}
	}
	X := make([][]uint64, cols)
	for i := range X {
		X[i] = make([]uint64, batch)
		for j := range X[i] {
			X[i][j] = rng.Uint64() % params.T.Q
		}
	}
	pm, err := ev.Prepare(W)
	if err != nil {
		return result{}, err
	}
	b := chamnp.Local(pm)
	xm, err := chamnp.Array(params, rng, sk, X, chamnp.ColMajor)
	if err != nil {
		return result{}, err
	}
	dst, err := chamnp.NewMatMulResult(b, xm)
	if err != nil {
		return result{}, err
	}
	// Correctness gate before timing: the warm output must match the
	// exact reference product.
	if err := chamnp.MatMulInto(b, dst, xm); err != nil {
		return result{}, err
	}
	want, err := ref.MatMul(params.T.Q, W, X)
	if err != nil {
		return result{}, err
	}
	for i, row := range dst.Decrypt(sk) {
		for j, got := range row {
			if got != want[i][j] {
				return result{}, fmt.Errorf("np N=%d: verification failed at [%d][%d]", ringN, i, j)
			}
		}
	}
	name := fmt.Sprintf("NpMatMul/warm/N=%d", ringN)
	return bench(name, ringN, rows*batch, cols, func(bb *testing.B) {
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			if err := chamnp.MatMulInto(b, dst, xm); err != nil {
				bb.Fatal(err)
			}
		}
	}), nil
}

// runNpInference times each layer of the two-layer pipeline (best of
// npInferenceRuns passes — layer latencies jitter, the best run is the
// reproducible one).
func runNpInference(workers int) ([]npLayer, float64, error) {
	const ringN, hidden, classes, batch = 256, 16, 10, 3
	params, err := cham.NewParams(ringN)
	if err != nil {
		return nil, 0, err
	}
	rng := cham.NewRNG(211)
	sk := params.KeyGen(rng)
	ev, err := cham.NewEvaluator(params, rng, sk, params.R.N)
	if err != nil {
		return nil, 0, err
	}
	ev.Workers = workers
	randMat := func(m, n int) [][]uint64 {
		out := make([][]uint64, m)
		for i := range out {
			out[i] = make([]uint64, n)
			for j := range out[i] {
				out[i][j] = rng.Uint64() % params.T.Q
			}
		}
		return out
	}
	W1, W2 := randMat(hidden, ringN), randMat(classes, hidden)
	b1 := make([]uint64, hidden)
	b2 := make([]uint64, classes)
	X := randMat(ringN, batch)
	pm1, err := ev.Prepare(W1)
	if err != nil {
		return nil, 0, err
	}
	pm2, err := ev.Prepare(W2)
	if err != nil {
		return nil, 0, err
	}

	names := []string{"matmul1", "bias1", "square_recrypt", "matmul2", "bias2"}
	best := make([]float64, len(names))
	const npInferenceRuns = 5
	for run := 0; run < npInferenceRuns; run++ {
		x, err := chamnp.Array(params, rng, sk, X, chamnp.ColMajor)
		if err != nil {
			return nil, 0, err
		}
		steps := []func(h *chamnp.EncMatrix) (*chamnp.EncMatrix, error){
			func(*chamnp.EncMatrix) (*chamnp.EncMatrix, error) { return chamnp.MatMul(chamnp.Local(pm1), x) },
			func(h *chamnp.EncMatrix) (*chamnp.EncMatrix, error) { return h.AddVector(b1) },
			func(h *chamnp.EncMatrix) (*chamnp.EncMatrix, error) { return h.SquareRecrypt(rng, sk) },
			func(h *chamnp.EncMatrix) (*chamnp.EncMatrix, error) { return chamnp.MatMul(chamnp.Local(pm2), h) },
			func(h *chamnp.EncMatrix) (*chamnp.EncMatrix, error) { return h.AddVector(b2) },
		}
		var h *chamnp.EncMatrix
		for i, step := range steps {
			t0 := time.Now()
			if h, err = step(h); err != nil {
				return nil, 0, fmt.Errorf("inference %s: %w", names[i], err)
			}
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			if run == 0 || ms < best[i] {
				best[i] = ms
			}
		}
	}
	layers := make([]npLayer, len(names))
	total := 0.0
	for i, name := range names {
		layers[i] = npLayer{Name: name, Millis: best[i]}
		total += best[i]
	}
	return layers, total, nil
}

func runNp(workers int) (*npResult, error) {
	nr := &npResult{}
	for _, sh := range []struct{ n, rows, cols, batch int }{
		{256, 64, 256, 8},  // single chunk per lane, 8 column blocks
		{512, 128, 1024, 4}, // multi-chunk: 2 vector ciphertexts per lane
	} {
		r, err := runNpShape(sh.n, sh.rows, sh.cols, sh.batch, workers)
		if err != nil {
			return nil, err
		}
		nr.MatMul = append(nr.MatMul, r)
		fmt.Printf("%-22s %12.0f ns/op %8d allocs/op %10.0f rows/s  (batch %d)\n",
			r.Name, r.NsPerOp, r.AllocsOp, r.RowsPerSec, sh.batch)
	}
	layers, total, err := runNpInference(workers)
	if err != nil {
		return nil, err
	}
	nr.InferenceLayers, nr.InferenceMillis = layers, total
	for _, l := range layers {
		fmt.Printf("  inference %-16s %8.3f ms\n", l.Name, l.Millis)
	}
	fmt.Printf("  inference total         %8.3f ms\n", total)
	return nr, nil
}

// mergeNpReport writes the np section into the report at path,
// preserving every other section (cluster.go's merge pattern).
func mergeNpReport(path string, nr *npResult) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parsing existing report %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	section, err := json.Marshal(nr)
	if err != nil {
		return err
	}
	doc["np"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote np section into %s\n", path)
	return nil
}

// readNpBaseline pulls the np section out of a committed report; a
// baseline without one is not an error (first run).
func readNpBaseline(path string) (*npResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base struct {
		Np *npResult `json:"np"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return base.Np, nil
}

// compareNp gates the warm array-tier matmul against a committed
// baseline: allocs/op must be 0 unconditionally, and ns/op must stay
// within maxWarmRegression of the baseline row when one exists.
func compareNp(baseline, cur *npResult) error {
	baseByName := map[string]result{}
	if baseline != nil {
		for _, r := range baseline.MatMul {
			baseByName[r.Name] = r
		}
	} else {
		fmt.Println("np bench-diff: baseline has no np section; alloc check only")
	}
	var failures []string
	for _, r := range cur.MatMul {
		if !strings.HasPrefix(r.Name, "NpMatMul/warm") {
			continue
		}
		if r.AllocsOp != 0 {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, want 0 (warm matmul must stay allocation-free)",
				r.Name, r.AllocsOp))
		}
		b, ok := baseByName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("  %-22s %12.0f ns/op  (no baseline row)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > maxWarmRegression {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx budget)",
				r.Name, b.NsPerOp, r.NsPerOp, ratio, maxWarmRegression))
		}
		fmt.Printf("  %-22s %12.0f -> %12.0f ns/op  (%.3fx)  %s\n", r.Name, b.NsPerOp, r.NsPerOp, ratio, status)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "chambench: FAIL:", f)
		}
		return fmt.Errorf("%d np warm-path failure(s)", len(failures))
	}
	fmt.Println("np bench-diff clean: warm matmul allocation-free and within budget")
	return nil
}
