package main

// Remote mode: measure the serving tier instead of the in-process hot
// path. Reports the RPC tax (remote single-client apply vs warm in-process
// ApplyInto over the same keys and matrix) and the batched throughput
// under concurrent clients. With -remote self, two loopback servers are
// started in-process — one with coalescing enabled, one pinned to batch
// size 1 — so the batching win is measured directly; with -remote
// host:port an external chamserve is benchmarked as-is.

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/rlwe"
	rt "cham/internal/runtime"
	"cham/internal/server"
	"cham/internal/wire"
)

// remoteResult is the -remote section of BENCH_hmvp.json.
type remoteResult struct {
	Target            string  `json:"target"`
	RingDegree        int     `json:"ring_degree"`
	Rows              int     `json:"rows"`
	Cols              int     `json:"cols"`
	Clients           int     `json:"clients"`
	InprocNsPerOp     float64 `json:"inproc_ns_per_op"`
	RPCNsPerOp        float64 `json:"rpc_ns_per_op"`
	RPCOverheadNs     float64 `json:"rpc_overhead_ns"`
	BatchedReqPerSec  float64 `json:"batched_req_per_sec"`
	Batch1ReqPerSec   float64 `json:"batch1_req_per_sec,omitempty"`
	CoalescingSpeedup float64 `json:"coalescing_speedup,omitempty"`
}

// loopbackServer starts an in-process server with a simulated card and
// returns its address plus a closer.
func loopbackServer(p bfv.Params, maxBatch int) (string, func(), error) {
	// 5ms per card job: scaled down from the ~100ms production HMVP but
	// still large against the software apply, so per-job dispatch is the
	// dominant serving cost exactly as on the real card.
	card, err := rt.New(rt.NewDevice(2, 5*time.Millisecond, rt.FaultPlan{}))
	if err != nil {
		return "", nil, err
	}
	card.JobTimeout = 5 * time.Second
	s, err := server.New(server.Config{
		Params:   p,
		MaxBatch: maxBatch,
		Linger:   2 * time.Millisecond,
		Card:     card,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go s.Serve(ln)
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// dialRemote connects a client and installs keys + matrix.
func dialRemote(addr string, p bfv.Params, keys *lwe.PackingKeys, A [][]uint64) (*client.Client, wire.MatrixHandle, error) {
	cl, err := client.Dial(client.Config{Addr: addr, Params: p, MaxConns: 128})
	if err != nil {
		return nil, wire.MatrixHandle{}, err
	}
	if _, err := cl.SetupKeys(keys); err != nil {
		cl.Close()
		return nil, wire.MatrixHandle{}, fmt.Errorf("setup keys: %w", err)
	}
	h, err := cl.RegisterMatrix(A)
	if err != nil {
		cl.Close()
		return nil, wire.MatrixHandle{}, fmt.Errorf("register: %w", err)
	}
	return cl, h, nil
}

// throughput drives `clients` concurrent goroutines, `perClient` applies
// each, and returns requests per second.
func throughput(cl *client.Client, h wire.MatrixHandle, vecs [][]*rlwe.Ciphertext, clients, perClient int) (float64, error) {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctV := vecs[c%len(vecs)]
			for i := 0; i < perClient; i++ {
				if _, err := cl.Apply(h.ID, ctV); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(clients*perClient) / elapsed.Seconds(), nil
}

// runRemote executes the remote benchmark against addrSpec ("self" or a
// host:port of a running chamserve with matching ring degree).
func runRemote(addrSpec string, ringN, clients int) (*remoteResult, error) {
	p, err := bfv.NewChamParams(ringN)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		return nil, err
	}
	m, cols := 64, ringN
	if m > ringN {
		m = ringN
	}
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, cols)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, cols)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := core.EncryptVector(p, rng, sk, v)

	// In-process baseline over the identical key set and matrix.
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		return nil, err
	}
	pm, err := ev.Prepare(A)
	if err != nil {
		return nil, err
	}
	out := pm.NewResult()
	if err := pm.ApplyInto(out, ctV); err != nil {
		return nil, err
	}
	inproc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := pm.ApplyInto(out, ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	inprocNs := float64(inproc.T.Nanoseconds()) / float64(inproc.N)

	res := &remoteResult{
		Target:     addrSpec,
		RingDegree: ringN,
		Rows:       m,
		Cols:       cols,
		Clients:    clients,
	}
	res.InprocNsPerOp = inprocNs

	addr := addrSpec
	var closeBatched func()
	if addrSpec == "self" {
		addr, closeBatched, err = loopbackServer(p, 16)
		if err != nil {
			return nil, err
		}
		defer closeBatched()
	}
	cl, h, err := dialRemote(addr, p, keys, A)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Single-client RPC latency: the pure serving tax (framing, TCP,
	// decode, queue) on top of the same ApplyInto.
	rpc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cl.Apply(h.ID, ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.RPCNsPerOp = float64(rpc.T.Nanoseconds()) / float64(rpc.N)
	res.RPCOverheadNs = res.RPCNsPerOp - inprocNs

	// Batched throughput under concurrent clients. Each goroutine reuses
	// one of a handful of pre-encrypted vectors (encryption is client-side
	// work and not what is being measured).
	vecs := [][]*rlwe.Ciphertext{ctV}
	for i := 0; i < 3; i++ {
		w := make([]uint64, cols)
		for j := range w {
			w[j] = rng.Uint64() % p.T.Q
		}
		vecs = append(vecs, core.EncryptVector(p, rng, sk, w))
	}
	const perClient = 8
	res.BatchedReqPerSec, err = throughput(cl, h, vecs, clients, perClient)
	if err != nil {
		return nil, err
	}

	if addrSpec == "self" {
		// Same fleet against a server pinned to batch size 1: every request
		// pays the full per-job card dispatch on its own.
		addr1, close1, err := loopbackServer(p, 1)
		if err != nil {
			return nil, err
		}
		defer close1()
		cl1, h1, err := dialRemote(addr1, p, keys, A)
		if err != nil {
			return nil, err
		}
		defer cl1.Close()
		res.Batch1ReqPerSec, err = throughput(cl1, h1, vecs, clients, perClient)
		if err != nil {
			return nil, err
		}
		res.CoalescingSpeedup = res.BatchedReqPerSec / res.Batch1ReqPerSec
	}
	return res, nil
}
