package main

// Cluster mode: measure the sharded serving tier. In-process shard
// fleets of 1, 2 and 4 chamserve nodes run behind a coordinator, each
// node fronting a simulated card in the descriptor-aware latency model
// (job time = base + per-row × rows), so a shard serving half the tiles
// finishes its card job in half the time — the same reason a real
// multi-card deployment scales. Aggregate rows/s per fleet size and the
// latency distribution under 1000 simulated clients land in the
// `cluster` section of BENCH_hmvp.json, and the run itself gates on the
// 2-shard fleet clearing 1.6x over 1 shard.
//
// Every fleet's first gathered result is checked bit-identical to the
// in-process evaluator before anything is timed.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"cham/internal/bfv"
	"cham/internal/client"
	"cham/internal/cluster"
	"cham/internal/core"
	"cham/internal/lwe"
	"cham/internal/obs/trace"
	"cham/internal/rlwe"
	rt "cham/internal/runtime"
	"cham/internal/server"
)

// Cluster benchmark shape: a 2048×32 matrix at ring degree 32 spans 64
// row tiles, enough for the ring to spread load evenly over 4 shards,
// while the tiny degree keeps the software share of each apply small
// against the simulated card time the scaling story is about.
const (
	clusterRingN = 32
	clusterRows  = 2048
	clusterCols  = 32

	// Scaling fleets: 500µs per row makes the full-matrix card job ~1s, so
	// fleet wall-clock is card-dominated and halves as tiles split.
	clusterPerRow = 500 * time.Microsecond
	// Latency fleet: a lighter card (51ms full-matrix job) keeps the
	// 1000-client closed-loop run in seconds while still queueing.
	clusterP99PerRow = 25 * time.Microsecond

	// clusterSpeedupFloor is the acceptance gate: 2 shards must clear this
	// aggregate-throughput multiple over 1 shard.
	clusterSpeedupFloor = 1.6
)

// clusterFleet is one fleet size's measurement.
type clusterFleet struct {
	Shards       int     `json:"shards"`
	Applies      int     `json:"applies"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AppliesPerSec float64 `json:"applies_per_sec"`
}

// clusterP99 is the simulated-client latency section.
type clusterP99 struct {
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// clusterResult is the `cluster` section of BENCH_hmvp.json.
type clusterResult struct {
	RingDegree    int            `json:"ring_degree"`
	Rows          int            `json:"rows"`
	Cols          int            `json:"cols"`
	Fleets        []clusterFleet `json:"fleets"`
	Speedup2Shard float64        `json:"speedup_2shard"`
	Speedup4Shard float64        `json:"speedup_4shard"`
	P99           clusterP99     `json:"p99"`
}

// clusterHarness holds the shared cleartext/ciphertext fixtures.
type clusterHarness struct {
	p    bfv.Params
	keys *lwe.PackingKeys
	A    [][]uint64
	ctV  []*rlwe.Ciphertext
	want *core.Result
}

func newClusterHarness() (*clusterHarness, error) {
	p, err := bfv.NewChamParams(clusterRingN)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(99))
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, p.R.N)
	if err != nil {
		return nil, err
	}
	A := make([][]uint64, clusterRows)
	for i := range A {
		A[i] = make([]uint64, clusterCols)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % p.T.Q
		}
	}
	v := make([]uint64, clusterCols)
	for j := range v {
		v[j] = rng.Uint64() % p.T.Q
	}
	ctV := core.EncryptVector(p, rng, sk, v)

	// Single-node ground truth for the per-fleet bit-identity gate.
	ev, err := core.NewEvaluatorFromKeys(p, keys)
	if err != nil {
		return nil, err
	}
	pm, err := ev.Prepare(A)
	if err != nil {
		return nil, err
	}
	want, err := pm.Apply(ctV)
	if err != nil {
		return nil, err
	}
	return &clusterHarness{p: p, keys: keys, A: A, ctV: ctV, want: want}, nil
}

// startFleet boots `shards` lazy-tile nodes with descriptor-aware cards
// plus a coordinator, installs keys, registers the matrix, and verifies
// one gathered apply bit-for-bit before returning.
func (h *clusterHarness) startFleet(shards int, perRow time.Duration, maxBatch int) (*cluster.Coordinator, [32]byte, func(), error) {
	var closers []func()
	shutdown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		dev := rt.NewDevice(2, time.Millisecond, rt.FaultPlan{})
		dev.SetRowLatency(time.Millisecond, perRow)
		card, err := rt.New(dev)
		if err != nil {
			shutdown()
			return nil, [32]byte{}, nil, err
		}
		card.JobTimeout = 30 * time.Second
		s, err := server.New(server.Config{
			Params:          h.p,
			LazyTiles:       true,
			Card:            card,
			MaxBatch:        maxBatch,
			Workers:         4,
			QueueDepth:      4096,
			DefaultDeadline: 120 * time.Second,
		})
		if err != nil {
			shutdown()
			return nil, [32]byte{}, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, [32]byte{}, nil, err
		}
		go s.Serve(ln)
		addrs[i] = ln.Addr().String()
		closers = append(closers, func() { ln.Close() })
	}
	co, err := cluster.New(cluster.Config{
		Params: h.p,
		Nodes:  addrs,
		// The hedging policy is for production stragglers; a benchmark
		// fleet's card waits are the workload, so keep hedges out of it.
		HedgeDelay:     time.Minute,
		RequestTimeout: 120 * time.Second,
	})
	if err != nil {
		shutdown()
		return nil, [32]byte{}, nil, err
	}
	closers = append(closers, co.Close)
	if _, err := co.SetupKeys(h.keys); err != nil {
		shutdown()
		return nil, [32]byte{}, nil, err
	}
	handle, err := co.RegisterMatrix(h.A)
	if err != nil {
		shutdown()
		return nil, [32]byte{}, nil, err
	}
	got, err := co.Apply(handle.ID, h.ctV)
	if err != nil {
		shutdown()
		return nil, [32]byte{}, nil, err
	}
	if len(got.Packed) != len(h.want.Packed) {
		shutdown()
		return nil, [32]byte{}, nil, fmt.Errorf("%d-shard fleet gathered %d tiles, want %d", shards, len(got.Packed), len(h.want.Packed))
	}
	for ti := range got.Packed {
		if !sameCT(got.Packed[ti], h.want.Packed[ti]) {
			shutdown()
			return nil, [32]byte{}, nil, fmt.Errorf("%d-shard fleet: tile %d not bit-identical to single-node apply", shards, ti)
		}
	}
	return co, handle.ID, shutdown, nil
}

func sameCT(a, b *rlwe.Ciphertext) bool {
	for l := 0; l < a.B.Levels(); l++ {
		for i := range a.B.Coeffs[l] {
			if a.B.Coeffs[l][i] != b.B.Coeffs[l][i] {
				return false
			}
		}
	}
	for l := 0; l < a.A.Levels(); l++ {
		for i := range a.A.Coeffs[l] {
			if a.A.Coeffs[l][i] != b.A.Coeffs[l][i] {
				return false
			}
		}
	}
	return true
}

// volley drives `clients` closed-loop goroutines, `perClient` applies
// each, and returns the per-request latencies plus the makespan.
func volley(co *cluster.Coordinator, id [32]byte, ctV []*rlwe.Ciphertext, clients, perClient int) ([]time.Duration, time.Duration, error) {
	lat := make([]time.Duration, clients*perClient)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r0 := time.Now()
				if _, err := co.Apply(id, ctV); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				lat[c*perClient+i] = time.Since(r0)
			}
		}(c)
	}
	wg.Wait()
	makespan := time.Since(t0)
	close(errs)
	for err := range errs {
		return nil, 0, err
	}
	return lat, makespan, nil
}

func percentile(lat []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// runCluster measures the fleets and returns the report section.
func runCluster() (*clusterResult, error) {
	h, err := newClusterHarness()
	if err != nil {
		return nil, err
	}
	res := &clusterResult{RingDegree: clusterRingN, Rows: clusterRows, Cols: clusterCols}

	const clients, perClient = 8, 1
	perShard := map[int]float64{}
	for _, shards := range []int{1, 2, 4} {
		// Coalescing is deliberately off in the scaling fleets: a batch's
		// card job costs the same as one request (job time follows the max
		// descriptor, not the sum), so coalescing luck would swamp the
		// sharding signal this phase isolates. MaxBatch=1 makes card time
		// scale purely with per-shard rows — deterministic run to run.
		co, id, stop, err := h.startFleet(shards, clusterPerRow, 1)
		if err != nil {
			return nil, err
		}
		_, makespan, err := volley(co, id, h.ctV, clients, perClient)
		stop()
		if err != nil {
			return nil, err
		}
		applies := clients * perClient
		f := clusterFleet{
			Shards:        shards,
			Applies:       applies,
			RowsPerSec:    float64(applies*clusterRows) / makespan.Seconds(),
			AppliesPerSec: float64(applies) / makespan.Seconds(),
		}
		perShard[shards] = f.RowsPerSec
		res.Fleets = append(res.Fleets, f)
		fmt.Printf("cluster %d shard(s):   %12.0f rows/s  (%d applies in %v)\n",
			shards, f.RowsPerSec, applies, makespan.Round(time.Millisecond))
	}
	res.Speedup2Shard = perShard[2] / perShard[1]
	res.Speedup4Shard = perShard[4] / perShard[1]
	fmt.Printf("aggregate speedup:     %.2fx at 2 shards, %.2fx at 4 shards\n",
		res.Speedup2Shard, res.Speedup4Shard)

	// Latency under 1000 simulated clients against the 2-shard fleet.
	const simClients = 1000
	// The latency fleet keeps request coalescing on — under a 1000-client
	// pile-up batching is the serving tier's real behavior, and the
	// distribution under saturation is the number being reported.
	co, id, stop, err := h.startFleet(2, clusterP99PerRow, 16)
	if err != nil {
		return nil, err
	}
	lat, makespan, err := volley(co, id, h.ctV, simClients, 1)
	stop()
	if err != nil {
		return nil, err
	}
	res.P99 = clusterP99{
		Shards:     2,
		Clients:    simClients,
		P50Millis:  float64(percentile(lat, 0.50)) / float64(time.Millisecond),
		P99Millis:  float64(percentile(lat, 0.99)) / float64(time.Millisecond),
		RowsPerSec: float64(simClients*clusterRows) / makespan.Seconds(),
	}
	fmt.Printf("1000-client 2-shard:   p50 %.0f ms, p99 %.0f ms, %12.0f rows/s\n",
		res.P99.P50Millis, res.P99.P99Millis, res.P99.RowsPerSec)

	if res.Speedup2Shard < clusterSpeedupFloor {
		return nil, fmt.Errorf("2-shard aggregate speedup %.2fx below the %.2fx floor",
			res.Speedup2Shard, clusterSpeedupFloor)
	}
	return res, nil
}

// runTracedClusterRequest is the end-to-end tracing demo behind
// `chambench -cluster -trace-sample`: a 2-shard fleet behind a real wire
// gateway serves one sampled client apply, and because every tier runs
// in this process the span ring already holds the merged trace. The
// span tree — client → gateway → coordinator → both shards → server
// queue/dispatch → runtime job → kernel stages — prints to stdout.
func runTracedClusterRequest(rate float64) error {
	// The rate must be set before the fleet boots: the coordinator's
	// shard clients negotiate the traced frame version at dial time.
	trace.Reset()
	trace.SetSampleRate(rate)
	defer trace.SetSampleRate(0)

	h, err := newClusterHarness()
	if err != nil {
		return err
	}
	co, id, stop, err := h.startFleet(2, clusterP99PerRow, 1)
	if err != nil {
		return err
	}
	defer stop()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{Coordinator: co})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go gw.Serve(ln)
	defer gw.Shutdown(context.Background())

	cl, err := client.Dial(client.Config{Params: h.p, Addr: ln.Addr().String()})
	if err != nil {
		return err
	}
	defer cl.Close()
	tc, sp := trace.Root("chambench", "apply")
	_, aerr := cl.ApplyTraced(tc, id, h.ctV)
	sp.EndErr(aerr)
	if aerr != nil {
		return aerr
	}

	recs := trace.TraceRecords(tc.Trace)
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Service] = true
	}
	for _, svc := range []string{"chambench", "client", "gateway", "coordinator", "server", "runtime", "kernel"} {
		if !seen[svc] {
			return fmt.Errorf("merged trace is missing %q spans (got %d spans)", svc, len(recs))
		}
	}
	fmt.Printf("\ntraced cluster request %s (%d spans):\n", tc.Trace, len(recs))
	return trace.WriteText(os.Stdout, recs)
}

// mergeClusterReport writes the cluster section into the report at path,
// preserving every other section a regular chambench run put there; a
// missing file starts a fresh report.
func mergeClusterReport(path string, cr *clusterResult) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parsing existing report %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	section, err := json.Marshal(cr)
	if err != nil {
		return err
	}
	doc["cluster"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote cluster section into %s\n", path)
	return nil
}

// readClusterBaseline pulls the cluster section out of a committed
// report; a baseline without one is not an error (first run).
func readClusterBaseline(path string) (*clusterResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base struct {
		Cluster *clusterResult `json:"cluster"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return base.Cluster, nil
}

// maxClusterRegression allows the 2-shard speedup to drift 25% under the
// committed baseline before bench-diff fails — wall-clock fleet runs
// jitter more than the single-process warm loops, and the absolute
// clusterSpeedupFloor inside runCluster always applies regardless.
const maxClusterRegression = 1.25

// compareCluster gates the cluster rows against a committed baseline: the
// floor always applies (enforced in runCluster), and the 2-shard speedup
// must stay within 25% of the baseline's when one is recorded.
func compareCluster(baseline *clusterResult, cur *clusterResult) error {
	if baseline == nil {
		fmt.Println("cluster bench-diff: baseline has no cluster section; floor check only")
		return nil
	}
	allowed := baseline.Speedup2Shard / maxClusterRegression
	fmt.Printf("cluster bench-diff: 2-shard speedup %.2fx (baseline %.2fx, floor %.2fx)\n",
		cur.Speedup2Shard, baseline.Speedup2Shard, allowed)
	if cur.Speedup2Shard < allowed {
		return fmt.Errorf("2-shard speedup %.2fx regressed >25%% from baseline %.2fx",
			cur.Speedup2Shard, baseline.Speedup2Shard)
	}
	return nil
}
