// Command chambench measures this repository's software HMVP hot path and
// emits machine-readable results for tracking. For each configuration it
// times the per-call MatVec (which redoes the row encode/lift/NTT every
// call) against the prepared-matrix path (Prepare once, ApplyInto per
// vector, allocation-free after warm-up) and records ns/op, allocs/op,
// bytes/op, rows/s, and the warm-over-cold speedup in BENCH_hmvp.json.
//
// The 256×4096 matrix is measured at two ring degrees. At the production
// degree N=4096 the whole vector fits one ciphertext chunk, so the
// m-1 = 255 key-switches of the packing tree — per-vector work no amount
// of matrix preparation can remove — dominate both paths. At N=512 the
// same matrix spans 8 column chunks per row, the regime where the
// amortized encode+lift+NTT work dominates and preparation pays off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"cham"
	"cham/internal/obs"
	_ "cham/internal/runtime" // RAS metric families appear (at zero) in the snapshot
)

type result struct {
	Name       string  `json:"name"`
	RingDegree int     `json:"ring_degree"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

type report struct {
	Benchmarks []result           `json:"benchmarks,omitempty"`
	Speedups   map[string]float64 `json:"prepared_apply_speedup,omitempty"`
	// Remote holds the serving-tier numbers when -remote is set.
	Remote *remoteResult `json:"remote,omitempty"`
	// Cluster holds the sharded-tier numbers when -cluster is set.
	Cluster *clusterResult `json:"cluster,omitempty"`
	// Np holds the encrypted-array-tier numbers when -np is set.
	Np *npResult `json:"np,omitempty"`
	// Telemetry is the obs registry snapshot from one instrumented apply
	// per shape, run after the timed benchmarks (which execute with
	// telemetry off so the numbers stay undisturbed).
	Telemetry []obs.MetricSnapshot `json:"telemetry"`
}

// bench runs f under the testing harness and converts the outcome.
func bench(name string, n, m, cols int, f func(b *testing.B)) result {
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return result{
		Name:       name,
		RingDegree: n,
		Rows:       m,
		Cols:       cols,
		NsPerOp:    ns,
		AllocsOp:   r.AllocsPerOp(),
		BytesOp:    r.AllocedBytesPerOp(),
		RowsPerSec: float64(m) / ns * 1e9,
	}
}

// runShape measures one matrix shape at one ring degree: per-call MatVec,
// cold Prepare+Apply, and warm ApplyInto reuse.
func runShape(ringN, m, cols int, workers int) ([]result, float64, error) {
	params, err := cham.NewParams(ringN)
	if err != nil {
		return nil, 0, err
	}
	rng := cham.NewRNG(99)
	sk := params.KeyGen(rng)
	ev, err := cham.NewEvaluator(params, rng, sk, m)
	if err != nil {
		return nil, 0, err
	}
	ev.Workers = workers
	A := make([][]uint64, m)
	for i := range A {
		A[i] = make([]uint64, cols)
		for j := range A[i] {
			A[i][j] = rng.Uint64() % params.T.Q
		}
	}
	v := make([]uint64, cols)
	for j := range v {
		v[j] = rng.Uint64() % params.T.Q
	}
	ctV := cham.EncryptVector(params, rng, sk, v)

	// Correctness gate before timing anything.
	pm, err := ev.Prepare(A)
	if err != nil {
		return nil, 0, err
	}
	res, err := pm.Apply(ctV)
	if err != nil {
		return nil, 0, err
	}
	want := cham.PlainMatVec(params, A, v)
	for i, got := range cham.DecryptResult(params, res, sk) {
		if got != want[i] {
			return nil, 0, fmt.Errorf("N=%d: verification failed at row %d", ringN, i)
		}
	}

	tag := func(s string) string { return fmt.Sprintf("%s/N=%d", s, ringN) }
	matvec := bench(tag("MatVec"), ringN, m, cols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.MatVec(A, ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	cold := bench(tag("Prepared/cold"), ringN, m, cols, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pm, err := ev.Prepare(A)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pm.Apply(ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := bench(tag("Prepared/warm"), ringN, m, cols, func(b *testing.B) {
		b.ReportAllocs()
		out := pm.NewResult()
		if err := pm.ApplyInto(out, ctV); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pm.ApplyInto(out, ctV); err != nil {
				b.Fatal(err)
			}
		}
	})
	// One instrumented pass after the timed runs populates the stage
	// histograms for the report's telemetry section; MatVec covers the
	// full stage taxonomy (encode/lift/ntt run on the fly), Prepare feeds
	// cham_hmvp_prepare_seconds (it would otherwise stay empty — the
	// correctness-gate Prepare above runs before telemetry is switched
	// on), and Apply the prepared path's end-to-end view.
	obs.SetEnabled(true)
	_, errMV := ev.MatVec(A, ctV)
	pmObs, errPrep := ev.Prepare(A)
	var errAp error
	if errPrep == nil {
		_, errAp = pmObs.Apply(ctV)
	}
	obs.SetEnabled(false)
	if errMV != nil {
		return nil, 0, errMV
	}
	if errPrep != nil {
		return nil, 0, errPrep
	}
	if errAp != nil {
		return nil, 0, errAp
	}
	return []result{matvec, cold, warm}, matvec.NsPerOp / warm.NsPerOp, nil
}

func main() {
	out := flag.String("o", "BENCH_hmvp.json", "output path for the JSON report")
	compare := flag.String("compare", "", "baseline report to diff against: re-run the shapes, exit nonzero if warm ns_per_op regresses >10% or warm allocs_per_op leaves 0; writes no report")
	workers := flag.Int("workers", 0, "evaluator worker goroutines (0 = GOMAXPROCS)")
	clusterMode := flag.Bool("cluster", false, "benchmark the sharded tier instead: in-process fleets of 1/2/4 shard nodes, aggregate rows/s, and p99 under 1000 simulated clients; fails if 2 shards clear <1.6x over 1")
	npMode := flag.Bool("np", false, "benchmark the chamnp array tier instead: warm batched MatMul rows/s at single- and multi-chunk shapes plus per-layer inference latency; with -compare, fails if warm MatMul allocates or regresses >10%")
	remote := flag.String("remote", "", `benchmark the serving tier instead: "self" spins up loopback servers in-process, host:port targets a running chamserve`)
	remoteN := flag.Int("remote-n", 256, "ring degree for -remote mode (must match an external server)")
	clients := flag.Int("clients", 64, "concurrent clients for the -remote throughput measurement")
	traceSample := flag.Float64("trace-sample", 0, "with -cluster: after the benchmark, send one sampled apply through a gateway-fronted 2-shard fleet and print the merged trace")
	flag.Parse()

	if *clusterMode {
		cr, err := runCluster()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			base, err := readClusterBaseline(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chambench:", err)
				os.Exit(1)
			}
			if err := compareCluster(base, cr); err != nil {
				fmt.Fprintln(os.Stderr, "chambench:", err)
				os.Exit(1)
			}
			return
		}
		// Merge into the existing report rather than clobbering the warm-path
		// benchmark rows the regular run committed there.
		if err := mergeClusterReport(*out, cr); err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		if *traceSample > 0 {
			if err := runTracedClusterRequest(*traceSample); err != nil {
				fmt.Fprintln(os.Stderr, "chambench:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *npMode {
		nr, err := runNp(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			base, err := readNpBaseline(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chambench:", err)
				os.Exit(1)
			}
			if err := compareNp(base, nr); err != nil {
				fmt.Fprintln(os.Stderr, "chambench:", err)
				os.Exit(1)
			}
			return
		}
		// Merge, as -cluster does: keep the warm-path rows and any other
		// sections the regular runs committed to the report.
		if err := mergeNpReport(*out, nr); err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		return
	}

	if *remote != "" {
		rr, err := runRemote(*remote, *remoteN, *clients)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		fmt.Printf("in-process warm apply:  %12.0f ns/op\n", rr.InprocNsPerOp)
		fmt.Printf("remote RPC apply:       %12.0f ns/op  (overhead %.0f ns, %.1f%%)\n",
			rr.RPCNsPerOp, rr.RPCOverheadNs, 100*rr.RPCOverheadNs/rr.InprocNsPerOp)
		fmt.Printf("batched throughput:     %12.0f req/s  (%d clients)\n", rr.BatchedReqPerSec, rr.Clients)
		if rr.Batch1ReqPerSec > 0 {
			fmt.Printf("batch-1 throughput:     %12.0f req/s\n", rr.Batch1ReqPerSec)
			fmt.Printf("coalescing speedup:     %12.2fx\n", rr.CoalescingSpeedup)
		}
		rep := report{Remote: rr, Telemetry: obs.Default().Snapshot()}
		writeReport(*out, rep)
		return
	}

	const m, cols = 256, 4096
	rep := report{Speedups: map[string]float64{}}
	for _, ringN := range []int{4096, 512, 256} {
		results, speedup, err := runShape(ringN, m, cols, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
		rep.Speedups[fmt.Sprintf("N=%d", ringN)] = speedup
		for _, r := range results {
			fmt.Printf("%-22s %12.0f ns/op %8d allocs/op %10.0f rows/s\n",
				r.Name, r.NsPerOp, r.AllocsOp, r.RowsPerSec)
		}
		fmt.Printf("  warm Apply speedup over MatVec at N=%d: %.2fx\n", ringN, speedup)
	}
	// Packing tree in isolation: full-tree warm rows at both the test and
	// production degrees (gated by -compare), per-level merge breakdown at
	// the production degree.
	for _, pc := range []struct {
		n        int
		perLevel bool
	}{{4096, true}, {256, false}} {
		results, err := runPack(pc.n, m, pc.perLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
		for _, r := range results {
			fmt.Printf("%-22s %12.0f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsOp)
		}
	}
	if *compare != "" {
		if err := compareBaseline(*compare, rep.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "chambench:", err)
			os.Exit(1)
		}
		return
	}
	rep.Telemetry = obs.Default().Snapshot()
	fmt.Println("\ntelemetry (one instrumented apply per shape):")
	obs.Default().WriteTo(os.Stdout)
	writeReport(*out, rep)
}

// maxWarmRegression is the warm ns/op ratio over baseline beyond which
// `chambench -compare` (make bench-diff) fails the build.
const maxWarmRegression = 1.10

// compareBaseline diffs the freshly measured warm-path results against a
// committed baseline report. It fails (nonzero exit upstream) if any
// shape's warm ns_per_op — a prepared apply or an isolated pack tree —
// regresses more than 10% over the baseline, or if any warm op allocates
// at all — the two invariants BENCH_hmvp.json exists to pin.
func compareBaseline(path string, cur []result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	// Only the benchmark rows matter for the gate; the telemetry section
	// round-trips through Prometheus conventions (string "le" labels) that
	// the snapshot type does not unmarshal, so skip it.
	var base struct {
		Benchmarks []result `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseByName := make(map[string]result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	fmt.Printf("\ncomparing against %s:\n", path)
	var failures []string
	checked := 0
	for _, r := range cur {
		b, ok := baseByName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if strings.HasPrefix(r.Name, "Prepared/warm") || strings.HasPrefix(r.Name, "Pack/warm") {
			checked++
			if ratio > maxWarmRegression {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx budget)",
					r.Name, b.NsPerOp, r.NsPerOp, ratio, maxWarmRegression))
			}
			if r.AllocsOp != 0 {
				status = "ALLOCS"
				failures = append(failures, fmt.Sprintf("%s: %d allocs/op, want 0 (warm path must stay allocation-free)",
					r.Name, r.AllocsOp))
			}
		}
		fmt.Printf("  %-22s %12.0f -> %12.0f ns/op  (%.3fx)  %s\n", r.Name, b.NsPerOp, r.NsPerOp, ratio, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s has no Prepared/warm entries to gate on", path)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "chambench: FAIL:", f)
		}
		return fmt.Errorf("%d warm-path regression(s) against %s", len(failures), path)
	}
	fmt.Printf("bench-diff clean: %d warm shapes within %.0f%% of baseline, 0 allocs/op\n",
		checked, 100*(maxWarmRegression-1))
	return nil
}

func writeReport(path string, rep report) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chambench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chambench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
