package main

import (
	"fmt"
	"testing"

	"cham"
	"cham/internal/lwe"
	"cham/internal/rlwe"
)

// runPack times the packing tree in isolation, so tree-vs-kernel
// attribution no longer requires reading stage histograms. "Pack/warm"
// runs the full m-leaf PackResident + FlushInto per op (gated by
// bench-diff like the prepared applies); the optional "Pack/level" rows
// time one PackTwoResident merge at each tree level i, the per-level
// breakdown — the tree costs (m-1) merges plus one flush, and the rows
// show the merge cost is level-independent.
func runPack(ringN, m int, perLevel bool) ([]result, error) {
	p, err := cham.NewParams(ringN)
	if err != nil {
		return nil, err
	}
	rng := cham.NewRNG(7)
	sk := p.KeyGen(rng)
	keys, err := lwe.GenPackingKeys(p, rng, sk, m)
	if err != nil {
		return nil, err
	}
	// m realistic leaves: fresh slot ciphertexts extracted at index 0 and
	// lifted once into deferred NTT-resident form. The tree folds its
	// buffers in place, so every timed op copies the pristine set into a
	// reusable working set first (untimed).
	pristine := make([]*lwe.PackNode, m)
	work := make([]*lwe.PackNode, m)
	for i := range pristine {
		ct := p.Encrypt(rng, sk, p.EncodeVector([]uint64{rng.Uint64() % p.T.Q}), p.NormalLevels)
		nd := lwe.NewPackNode(p)
		lwe.ResidentFromRLWE(p, nd, lwe.Extract(p, ct, 0).AsRLWE(p))
		pristine[i] = nd
		work[i] = lwe.NewPackNode(p)
	}
	copyIn := func(dst, src *lwe.PackNode) {
		dst.BT.CopyFrom(src.BT)
		dst.A.CopyFrom(src.A)
	}
	out := &rlwe.Ciphertext{B: p.R.NewPoly(p.NormalLevels), A: p.R.NewPoly(p.NormalLevels)}
	packOnce := func() error {
		for j, src := range pristine {
			copyIn(work[j], src)
		}
		root, err := lwe.PackResident(p, work, keys, 1)
		if err != nil {
			return err
		}
		lwe.FlushInto(p, out, root)
		return nil
	}
	if err := packOnce(); err != nil { // correctness + pool warm-up
		return nil, err
	}
	results := []result{bench(fmt.Sprintf("Pack/warm/N=%d", ringN), ringN, m, 0, func(b *testing.B) {
		b.ReportAllocs()
		// Re-warm inside the timed harness: testing.Benchmark GCs before
		// each run, which can victimize the small pooled scratch shells,
		// and that one-time refill must not land in the measured window.
		if err := packOnce(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			if err := packOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})}
	if !perLevel {
		return results, nil
	}
	ms := lwe.GetMergeScratch(p)
	defer lwe.PutMergeScratch(p, ms)
	E, O := lwe.NewPackNode(p), lwe.NewPackNode(p)
	for i := 1; i < m; i <<= 1 {
		swk := keys.Keys[2*i+1]
		results = append(results, bench(fmt.Sprintf("Pack/level/i=%d/N=%d", i, ringN), ringN, 2*i, 0, func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				b.StopTimer()
				copyIn(E, pristine[0])
				copyIn(O, pristine[1])
				b.StartTimer()
				lwe.PackTwoResident(p, E, i, E, O, swk, ms)
			}
		}))
	}
	return results, nil
}
