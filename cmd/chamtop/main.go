// Command chamtop is a small top(1)-style viewer for a running chamsim
// (or any process serving the obs registry): it polls /metrics, and
// renders the HMVP stage breakdown, the runtime/engine state, and (when
// pointed at a chamcluster gateway) the scatter/gather counters as text
// tables, with rates computed between consecutive scrapes.
//
// Usage:
//
//	chamtop                        poll http://localhost:9090/metrics
//	chamtop -url http://host:9090/metrics -interval 2s
//	chamtop -once                  single scrape, print, exit
//	chamtop -n 5                   five scrapes, then exit
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cham/internal/obs"
)

var (
	urlFlag  = flag.String("url", "http://localhost:9090/metrics", "metrics endpoint to poll")
	interval = flag.Duration("interval", 2*time.Second, "time between scrapes")
	once     = flag.Bool("once", false, "scrape once and exit")
	count    = flag.Int("n", 0, "exit after this many scrapes (0 = run until interrupted)")
)

// scrape fetches and parses one exposition.
func scrape(url string) ([]obs.Sample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("chamtop: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseText(string(body))
}

// view indexes one scrape for the renderer.
type view struct {
	when    time.Time
	samples map[string]float64 // series key -> value
}

func index(samples []obs.Sample, when time.Time) *view {
	v := &view{when: when, samples: make(map[string]float64, len(samples))}
	for _, s := range samples {
		v.samples[seriesKey(s)] = s.Value
	}
	return v
}

func seriesKey(s obs.Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	return b.String()
}

func (v *view) get(name string, labels ...string) (float64, bool) {
	s := obs.Sample{Name: name, Labels: map[string]string{}}
	for i := 0; i+1 < len(labels); i += 2 {
		s.Labels[labels[i]] = labels[i+1]
	}
	val, ok := v.samples[seriesKey(s)]
	return val, ok
}

// render prints the stage and engine tables; prev may be nil (first
// scrape: totals only, no rates).
func render(w io.Writer, cur, prev *view) {
	fmt.Fprintf(w, "chamtop — %s — %s\n\n", *urlFlag, cur.when.Format("15:04:05"))

	// Stage table: count, total seconds, mean latency, share of the
	// summed stage time.
	var totalSec float64
	type row struct {
		name            string
		count, sum, avg float64
	}
	rows := make([]row, 0, obs.NumStages)
	for _, stage := range obs.StageNames {
		cnt, ok1 := cur.get("cham_hmvp_stage_seconds_count", "stage", stage)
		sum, ok2 := cur.get("cham_hmvp_stage_seconds_sum", "stage", stage)
		if !ok1 || !ok2 {
			continue
		}
		r := row{name: stage, count: cnt, sum: sum}
		if cnt > 0 {
			r.avg = sum / cnt
		}
		totalSec += sum
		rows = append(rows, r)
	}
	fmt.Fprintf(w, "%-12s %10s %12s %12s %7s\n", "STAGE", "COUNT", "TOTAL(s)", "AVG(ms)", "SHARE")
	for _, r := range rows {
		share := 0.0
		if totalSec > 0 {
			share = 100 * r.sum / totalSec
		}
		fmt.Fprintf(w, "%-12s %10.0f %12.4f %12.4f %6.1f%%\n",
			r.name, r.count, r.sum, 1e3*r.avg, share)
	}

	// Engine table: busy fraction over the scrape interval (delta busy
	// seconds / wall interval); lifetime busy seconds as fallback.
	fmt.Fprintf(w, "\n%-12s %14s %10s\n", "ENGINE", "BUSY(s total)", "BUSY%")
	for e := 0; ; e++ {
		busy, ok := cur.get("cham_runtime_engine_busy_seconds_total", "engine", strconv.Itoa(e))
		if !ok {
			break
		}
		frac := "-"
		if prev != nil {
			if prevBusy, ok := prev.get("cham_runtime_engine_busy_seconds_total", "engine", strconv.Itoa(e)); ok {
				if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
					frac = fmt.Sprintf("%.1f%%", 100*(busy-prevBusy)/dt)
				}
			}
		}
		fmt.Fprintf(w, "engine %-5d %14.4f %10s\n", e, busy, frac)
	}

	// Cluster section: only rendered when the endpoint belongs to a
	// chamcluster gateway (the cham_cluster_* family is registered).
	if nodes, ok := cur.get("cham_cluster_nodes"); ok {
		scatters, _ := cur.get("cham_cluster_scatters_total")
		shardOK, _ := cur.get("cham_cluster_shard_requests_total", "outcome", "ok")
		shardErr, _ := cur.get("cham_cluster_shard_requests_total", "outcome", "error")
		hedges, _ := cur.get("cham_cluster_hedges_total")
		rescatters, _ := cur.get("cham_cluster_rescatters_total")
		degraded, _ := cur.get("cham_cluster_degraded_total")
		joins, _ := cur.get("cham_cluster_joins_total")
		conns, _ := cur.get("cham_cluster_gateway_connections")
		gatherCnt, _ := cur.get("cham_cluster_gather_seconds_count")
		gatherSum, _ := cur.get("cham_cluster_gather_seconds_sum")
		rate := "-"
		if prev != nil {
			if prevScatters, ok := prev.get("cham_cluster_scatters_total"); ok {
				if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
					rate = fmt.Sprintf("%.1f/s", (scatters-prevScatters)/dt)
				}
			}
		}
		gatherAvg := 0.0
		if gatherCnt > 0 {
			gatherAvg = gatherSum / gatherCnt
		}
		fmt.Fprintf(w, "\nCLUSTER  nodes %.0f  conns %.0f  scatters %.0f (%s)  gather avg %.2fms\n",
			nodes, conns, scatters, rate, 1e3*gatherAvg)
		fmt.Fprintf(w, "         shard ok %.0f  err %.0f  hedges %.0f  rescatters %.0f  degraded %.0f  joins %.0f\n",
			shardOK, shardErr, hedges, rescatters, degraded, joins)
	}

	// RAS one-liner.
	replays, _ := cur.get("cham_runtime_replays_total")
	resets, _ := cur.get("cham_runtime_resets_total")
	temp, _ := cur.get("cham_runtime_temp_celsius")
	alive, _ := cur.get("cham_runtime_alive")
	applies, _ := cur.get("cham_hmvp_applies_total", "path", "prepared")
	appliesMV, _ := cur.get("cham_hmvp_applies_total", "path", "matvec")
	fmt.Fprintf(w, "\napplies %.0f  replays %.0f  resets %.0f  temp %.1fC  alive %.0f\n",
		applies+appliesMV, replays, resets, temp, alive)
}

func main() {
	flag.Parse()
	n := *count
	if *once {
		n = 1
	}
	var prev *view
	for i := 0; n == 0 || i < n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		samples, err := scrape(*urlFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chamtop:", err)
			os.Exit(1)
		}
		cur := index(samples, time.Now())
		render(os.Stdout, cur, prev)
		fmt.Println()
		prev = cur
	}
}
