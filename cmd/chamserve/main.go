// Command chamserve runs the networked HMVP service: clients register
// cleartext matrices (prepared once, named by content hash) and stream
// encrypted vectors at them over the wire protocol; the server coalesces
// concurrent requests into batches, mirrors each batch as one job on a
// simulated CHAM card, and applies admission control so overload turns
// into typed rejections rather than collapse.
//
// Quickstart:
//
//	chamserve -addr :7316 -metrics :9090
//
// then point internal/client (or examples/serve) at :7316. SIGINT/SIGTERM
// drains gracefully: in-flight requests finish, new ones are rejected
// with the retryable "draining" code.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cham/internal/bfv"
	"cham/internal/obs/metricshttp"
	"cham/internal/obs/trace"
	rt "cham/internal/runtime"
	"cham/internal/server"
)

// parseLogLevel maps the -log-level flag onto a stderr slog handler.
func parseLogLevel(s string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func main() {
	var (
		addr        = flag.String("addr", ":7316", "TCP address to serve the wire protocol on")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/pprof, and /debug/traces on this address (enables telemetry)")
		ringN       = flag.Int("n", 4096, "ring degree (power of two; must match clients)")
		maxBatch    = flag.Int("max-batch", 16, "max coalesced requests per batch (1 disables batching)")
		linger      = flag.Duration("linger", 2*time.Millisecond, "how long a batch waits to fill before dispatch")
		queueDepth  = flag.Int("queue-depth", 256, "admission queue bound; beyond it requests are rejected as overloaded")
		workers     = flag.Int("workers", 0, "batch executor goroutines (0 = GOMAXPROCS)")
		evalWorkers = flag.Int("eval-workers", 0, "per-apply evaluator parallelism (0 = GOMAXPROCS)")
		deadline    = flag.Duration("deadline", 5*time.Second, "default per-request deadline (queue wait + service)")
		engines     = flag.Int("card-engines", 2, "simulated accelerator engines behind the batcher (0 disables the card mirror)")
		jobDur      = flag.Duration("card-job-dur", 200*time.Microsecond, "simulated per-job latency of the card")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
		traceSample = flag.Float64("trace-sample", 0, "probability [0,1] that a request this node roots is traced end-to-end")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	)
	flag.Parse()
	log, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamserve:", err)
		os.Exit(1)
	}
	trace.SetSampleRate(*traceSample)
	if err := run(*addr, *metricsAddr, *ringN, *maxBatch, *linger, *queueDepth,
		*workers, *evalWorkers, *deadline, *engines, *jobDur, *drainWait, log); err != nil {
		fmt.Fprintln(os.Stderr, "chamserve:", err)
		os.Exit(1)
	}
}

func run(addr, metricsAddr string, ringN, maxBatch int, linger time.Duration,
	queueDepth, workers, evalWorkers int, deadline time.Duration,
	engines int, jobDur, drainWait time.Duration, log *slog.Logger) error {
	p, err := bfv.NewChamParams(ringN)
	if err != nil {
		return err
	}
	if metricsAddr != "" {
		ma, err := metricshttp.Serve(metricsAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "chamserve: metrics server:", err)
		})
		if err != nil {
			return err
		}
		fmt.Printf("metrics: serving /metrics and /debug/pprof on http://%s\n", ma)
	}
	cfg := server.Config{
		Params:          p,
		MaxBatch:        maxBatch,
		Linger:          linger,
		QueueDepth:      queueDepth,
		DefaultDeadline: deadline,
		Workers:         workers,
		EvalWorkers:     evalWorkers,
		Log:             log,
	}
	if engines > 0 {
		card, err := rt.New(rt.NewDevice(engines, jobDur, rt.FaultPlan{}))
		if err != nil {
			return err
		}
		cfg.Card = card
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Println("chamserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	fmt.Printf("chamserve: N=%d max-batch=%d queue=%d engines=%d, serving on %s\n",
		ringN, maxBatch, queueDepth, engines, addr)
	if err := s.ListenAndServe(addr); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("chamserve: drained cleanly")
	return nil
}
