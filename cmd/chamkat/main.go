// Command chamkat verifies the golden known-answer tests under
// internal/kat/testdata against freshly generated values, or regenerates
// them after an intentional pipeline change:
//
//	go run ./cmd/chamkat           # verify (non-zero exit on mismatch)
//	go run ./cmd/chamkat -regen    # rewrite the golden files
package main

import (
	"flag"
	"fmt"
	"os"

	"cham/internal/kat"
)

func main() {
	regen := flag.Bool("regen", false, "rewrite the golden KAT files instead of verifying them")
	dir := flag.String("dir", "internal/kat/testdata", "directory holding the golden KAT files")
	flag.Parse()

	if *regen {
		if err := kat.Write(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "chamkat:", err)
			os.Exit(1)
		}
		fmt.Println("chamkat: golden KATs regenerated in", *dir)
		return
	}
	if err := kat.Verify(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "chamkat:", err)
		os.Exit(1)
	}
	fmt.Println("chamkat: all golden KATs verified")
}
