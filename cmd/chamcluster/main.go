// Command chamcluster runs the sharded serving tier: a wire-compatible
// gateway that scatters each apply's row tiles across chamserve shard
// nodes along a consistent-hash ring and gathers the packed ciphertexts
// back into the exact single-node result. Unmodified clients point at
// the gateway and see one big server.
//
// Two ways to get shards:
//
//	chamcluster -addr :7320 -nodes host1:7316,host2:7316
//
// fronts externally managed chamserve processes (run them with
// -lazy-tiles semantics; the gateway broadcasts keys and matrices), or
//
//	chamcluster -addr :7320 -spawn 4
//
// spawns 4 in-process shard nodes on loopback — the one-binary way to
// run a whole cluster for demos and benchmarks. SIGINT/SIGTERM drains
// the gateway first, then the spawned shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cham/internal/bfv"
	"cham/internal/cluster"
	"cham/internal/obs/metricshttp"
	"cham/internal/obs/trace"
	rt "cham/internal/runtime"
	"cham/internal/server"
)

// parseLogLevel maps the -log-level flag onto a stderr slog handler.
func parseLogLevel(s string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(s)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func main() {
	var (
		addr        = flag.String("addr", ":7320", "TCP address the gateway serves the wire protocol on")
		nodesFlag   = flag.String("nodes", "", "comma-separated chamserve shard addresses (mutually exclusive with -spawn)")
		spawn       = flag.Int("spawn", 0, "spawn this many in-process shard nodes on loopback")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/pprof, and /debug/traces on this address (enables telemetry)")
		ringN       = flag.Int("n", 4096, "ring degree (power of two; must match clients and shards)")
		replicas    = flag.Int("replicas", 2, "hedged attempts per tile group (owner + fallbacks)")
		hedge       = flag.Duration("hedge", 50*time.Millisecond, "delay before hedging a straggling shard leg")
		engines     = flag.Int("card-engines", 2, "simulated card engines per spawned shard (0 disables the card)")
		jobDur      = flag.Duration("card-job-dur", 200*time.Microsecond, "flat per-job latency of each spawned shard's card")
		rowLat      = flag.Duration("card-row-lat", 0, "per-row card latency for spawned shards (0 keeps the flat model)")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
		traceSample = flag.Float64("trace-sample", 0, "probability [0,1] that an apply arriving untraced is sampled at the gateway")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	)
	flag.Parse()
	log, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chamcluster:", err)
		os.Exit(1)
	}
	trace.SetSampleRate(*traceSample)
	if err := run(*addr, *nodesFlag, *metricsAddr, *spawn, *ringN, *replicas,
		*hedge, *engines, *jobDur, *rowLat, *drainWait, log); err != nil {
		fmt.Fprintln(os.Stderr, "chamcluster:", err)
		os.Exit(1)
	}
}

func run(addr, nodesFlag, metricsAddr string, spawn, ringN, replicas int,
	hedge time.Duration, engines int, jobDur, rowLat time.Duration, drainWait time.Duration,
	log *slog.Logger) error {
	p, err := bfv.NewChamParams(ringN)
	if err != nil {
		return err
	}
	if (nodesFlag == "") == (spawn == 0) {
		return fmt.Errorf("exactly one of -nodes or -spawn is required")
	}
	if metricsAddr != "" {
		ma, err := metricshttp.Serve(metricsAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "chamcluster: metrics server:", err)
		})
		if err != nil {
			return err
		}
		fmt.Printf("metrics: serving /metrics and /debug/pprof on http://%s\n", ma)
	}

	var nodes []string
	var shards []*server.Server
	if spawn > 0 {
		for i := 0; i < spawn; i++ {
			cfg := server.Config{Params: p, LazyTiles: true, Log: log.With("shard", i)}
			if engines > 0 {
				dev := rt.NewDevice(engines, jobDur, rt.FaultPlan{})
				if rowLat > 0 {
					dev.SetRowLatency(jobDur, rowLat)
				}
				card, err := rt.New(dev)
				if err != nil {
					return err
				}
				cfg.Card = card
			}
			s, err := server.New(cfg)
			if err != nil {
				return err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go s.Serve(ln)
			shards = append(shards, s)
			nodes = append(nodes, ln.Addr().String())
			fmt.Printf("chamcluster: shard %d on %s\n", i, ln.Addr())
		}
	} else {
		for _, n := range strings.Split(nodesFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
	}

	co, err := cluster.New(cluster.Config{
		Params:     p,
		Nodes:      nodes,
		Replicas:   replicas,
		HedgeDelay: hedge,
		Log:        log,
	})
	if err != nil {
		return err
	}
	defer co.Close()
	gw, err := cluster.NewGateway(cluster.GatewayConfig{Coordinator: co})
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		<-sig
		fmt.Println("chamcluster: draining gateway...")
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		err := gw.Shutdown(ctx)
		for i, s := range shards {
			if serr := s.Shutdown(ctx); serr != nil && err == nil {
				err = fmt.Errorf("shard %d: %w", i, serr)
			}
		}
		done <- err
	}()

	fmt.Printf("chamcluster: N=%d shards=%d replicas=%d hedge=%v, gateway on %s\n",
		ringN, len(nodes), replicas, hedge, addr)
	if err := gw.ListenAndServe(addr); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("chamcluster: drained cleanly")
	return nil
}
